"""The CI benchmark gate must skip cleanly on unusable snapshots and
exit nonzero only on an actual regression."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
cr = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", cr)
_spec.loader.exec_module(cr)


class TestHeadlineOf:
    @pytest.mark.parametrize(
        "snapshot",
        [
            {},  # key missing
            {"headline_seconds": None},
            {"headline_seconds": "fast"},
            {"headline_seconds": True},  # bool is not a duration
            {"headline_seconds": 0},
            {"headline_seconds": -1.5},
            [1, 2, 3],  # not even an object
            "just a string",
            None,
        ],
    )
    def test_unusable_snapshots_are_none(self, snapshot):
        assert cr.headline_of(snapshot) is None

    def test_numeric_values_coerce(self):
        assert cr.headline_of({"headline_seconds": 2}) == 2.0
        assert cr.headline_of({"headline_seconds": 0.25}) == 0.25


@pytest.fixture
def gate(tmp_path, monkeypatch):
    """Run main() against a temp repo root with a stubbed baseline."""
    monkeypatch.setattr(cr, "REPO_ROOT", tmp_path)
    state = {"baseline": None}
    monkeypatch.setattr(cr, "load_baseline", lambda name, ref: state["baseline"])

    def run(current, baseline, *extra):
        state["baseline"] = baseline
        path = tmp_path / "BENCH_x.json"
        if current is not None:
            text = current if isinstance(current, str) else json.dumps(current)
            path.write_text(text)
        elif path.exists():
            path.unlink()
        return cr.main(["BENCH_x.json", *extra])

    return run


class TestMainExitCodes:
    def test_within_factor_ok(self, gate, capsys):
        assert gate({"headline_seconds": 1.1}, {"headline_seconds": 1.0}) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_fails(self, gate, capsys):
        assert gate({"headline_seconds": 10.0}, {"headline_seconds": 1.0}) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_key_skips(self, gate, capsys):
        assert gate({"headline_seconds": 1.0}, {"other": 1}) == 0
        assert "no usable headline_seconds; skipping" in capsys.readouterr().out

    def test_non_dict_baseline_skips(self, gate, capsys):
        assert gate({"headline_seconds": 1.0}, [1, 2, 3]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_no_baseline_skips(self, gate, capsys):
        assert gate({"headline_seconds": 1.0}, None) == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_malformed_current_skips(self, gate, capsys):
        assert gate("{not json", {"headline_seconds": 1.0}) == 0
        assert "not valid JSON" in capsys.readouterr().out

    def test_unusable_current_value_skips(self, gate, capsys):
        assert gate({"headline_seconds": "so fast"}, {"headline_seconds": 1.0}) == 0
        assert "current snapshot has no usable" in capsys.readouterr().out

    def test_missing_current_file_is_usage_error(self, gate, capsys):
        assert gate(None, {"headline_seconds": 1.0}) == 2
        assert "did the benchmark run" in capsys.readouterr().err

    def test_qps_drop_fails(self, gate, capsys):
        current = {
            "headline_seconds": 1.0,
            "parallel": {"parallel_qps": 20.0},
        }
        baseline = {
            "headline_seconds": 1.0,
            "parallel": {"parallel_qps": 100.0},
        }
        assert gate(current, baseline) == 1
        out = capsys.readouterr().out
        assert "parallel.qps" in out and "REGRESSION" in out

    def test_qps_within_floor_ok(self, gate, capsys):
        current = {"headline_seconds": 1.0, "parallel": {"parallel_qps": 90.0}}
        baseline = {"headline_seconds": 1.0, "parallel": {"parallel_qps": 100.0}}
        assert gate(current, baseline) == 0
        assert "parallel.qps" in capsys.readouterr().out

    def test_qps_improvement_ok(self, gate, capsys):
        # qps regresses downward; a 10x gain must never trip the gate
        current = {"headline_seconds": 1.0, "parallel": {"parallel_qps": 1000.0}}
        baseline = {"headline_seconds": 1.0, "parallel": {"parallel_qps": 100.0}}
        assert gate(current, baseline) == 0
        assert "OK" in capsys.readouterr().out

    def test_sharded_block_gated_per_worker_count(self, gate, capsys):
        sharded = lambda w4_qps: {
            "single_process_qps": 100.0,
            "workers": [
                {"workers": 1, "qps": 90.0},
                {"workers": 4, "qps": w4_qps},
            ],
        }
        current = {"headline_seconds": 1.0, "sharded": sharded(50.0)}
        baseline = {"headline_seconds": 1.0, "sharded": sharded(300.0)}
        assert gate(current, baseline) == 1
        out = capsys.readouterr().out
        assert "sharded.w4.qps" in out and "REGRESSION" in out
        assert out.count("OK") >= 3  # headline, w1, single_process all fine

    def test_baseline_without_block_skips_with_message(self, gate, capsys):
        current = {
            "headline_seconds": 1.0,
            "sharded": {"single_process_qps": 100.0,
                        "workers": [{"workers": 2, "qps": 150.0}]},
        }
        baseline = {"headline_seconds": 1.0}  # written before sharding existed
        assert gate(current, baseline) == 0
        out = capsys.readouterr().out
        assert "sharded.w2.qps: baseline has no such figure; skipping" in out

    def test_custom_qps_factor(self, gate, capsys):
        current = {"headline_seconds": 1.0, "parallel": {"parallel_qps": 60.0}}
        baseline = {"headline_seconds": 1.0, "parallel": {"parallel_qps": 100.0}}
        assert gate(current, baseline, "--qps-factor", "1.25") == 1
        assert gate(current, baseline, "--qps-factor", "2.0") == 0

    def test_unusable_qps_values_ignored(self, gate, capsys):
        current = {
            "headline_seconds": 1.0,
            "parallel": {"parallel_qps": "fast"},
            "sharded": {"workers": [{"workers": True, "qps": 5.0},
                                    {"workers": 2, "qps": -1.0}, "junk"]},
        }
        baseline = {"headline_seconds": 1.0, "parallel": {"parallel_qps": 100.0}}
        assert gate(current, baseline) == 0
        assert "qps" not in capsys.readouterr().out

    def test_kernel_hit_rate_drop_fails(self, gate, capsys):
        current = {
            "headline_seconds": 1.0,
            "kernels": {"packed": True, "combined_descent_hit_rate": 0.08},
        }
        baseline = {
            "headline_seconds": 1.0,
            "kernels": {"packed": True, "combined_descent_hit_rate": 0.8},
        }
        assert gate(current, baseline) == 1
        out = capsys.readouterr().out
        assert "kernels.combined_descent_hit_rate" in out and "REGRESSION" in out

    def test_kernel_hit_rate_within_floor_ok(self, gate, capsys):
        current = {
            "headline_seconds": 1.0,
            "kernels": {
                "packed": True,
                "combined_descent_hit_rate": 0.7,
                "docid_descent_hit_rate": 0.9,
            },
        }
        baseline = {
            "headline_seconds": 1.0,
            "kernels": {
                "packed": True,
                "combined_descent_hit_rate": 0.6,
                "docid_descent_hit_rate": 0.95,
            },
        }
        assert gate(current, baseline) == 0
        out = capsys.readouterr().out
        assert "kernels.combined_descent_hit_rate" in out
        assert "kernels.docid_descent_hit_rate" in out
        assert "REGRESSION" not in out

    def test_baseline_without_kernels_block_skips_with_message(self, gate, capsys):
        current = {
            "headline_seconds": 1.0,
            "kernels": {"packed": True, "combined_descent_hit_rate": 0.8},
        }
        baseline = {"headline_seconds": 1.0}  # predates the kernels block
        assert gate(current, baseline) == 0
        out = capsys.readouterr().out
        assert (
            "kernels.combined_descent_hit_rate: baseline has no such figure; "
            "skipping" in out
        )

    def test_unusable_kernel_values_ignored(self, gate, capsys):
        current = {
            "headline_seconds": 1.0,
            "kernels": {
                "packed": True,  # bool: not a gated figure
                "combined_descent_hit_rate": "high",
                "docid_descent_hit_rate": -0.5,
                "cells": 12,  # numeric but not a *_hit_rate figure
            },
        }
        baseline = {"headline_seconds": 1.0, "kernels": {"packed": True}}
        assert gate(current, baseline) == 0
        assert "kernels." not in capsys.readouterr().out

    def test_skip_and_regression_mix_still_fails(self, tmp_path, monkeypatch, capsys):
        # one snapshot skips (keyless baseline), the other regresses:
        # the skip must not mask the failure exit code
        monkeypatch.setattr(cr, "REPO_ROOT", tmp_path)
        baselines = {
            "BENCH_skip.json": {},
            "BENCH_slow.json": {"headline_seconds": 1.0},
        }
        monkeypatch.setattr(cr, "load_baseline", lambda name, ref: baselines[name])
        (tmp_path / "BENCH_skip.json").write_text(json.dumps({"headline_seconds": 1.0}))
        (tmp_path / "BENCH_slow.json").write_text(json.dumps({"headline_seconds": 9.0}))
        assert cr.main(["BENCH_skip.json", "BENCH_slow.json"]) == 1
        out = capsys.readouterr().out
        assert "skipping" in out and "REGRESSION" in out
