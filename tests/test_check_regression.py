"""The CI benchmark gate must skip cleanly on unusable snapshots and
exit nonzero only on an actual regression."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
cr = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", cr)
_spec.loader.exec_module(cr)


class TestHeadlineOf:
    @pytest.mark.parametrize(
        "snapshot",
        [
            {},  # key missing
            {"headline_seconds": None},
            {"headline_seconds": "fast"},
            {"headline_seconds": True},  # bool is not a duration
            {"headline_seconds": 0},
            {"headline_seconds": -1.5},
            [1, 2, 3],  # not even an object
            "just a string",
            None,
        ],
    )
    def test_unusable_snapshots_are_none(self, snapshot):
        assert cr.headline_of(snapshot) is None

    def test_numeric_values_coerce(self):
        assert cr.headline_of({"headline_seconds": 2}) == 2.0
        assert cr.headline_of({"headline_seconds": 0.25}) == 0.25


@pytest.fixture
def gate(tmp_path, monkeypatch):
    """Run main() against a temp repo root with a stubbed baseline."""
    monkeypatch.setattr(cr, "REPO_ROOT", tmp_path)
    state = {"baseline": None}
    monkeypatch.setattr(cr, "load_baseline", lambda name, ref: state["baseline"])

    def run(current, baseline, *extra):
        state["baseline"] = baseline
        path = tmp_path / "BENCH_x.json"
        if current is not None:
            text = current if isinstance(current, str) else json.dumps(current)
            path.write_text(text)
        elif path.exists():
            path.unlink()
        return cr.main(["BENCH_x.json", *extra])

    return run


class TestMainExitCodes:
    def test_within_factor_ok(self, gate, capsys):
        assert gate({"headline_seconds": 1.1}, {"headline_seconds": 1.0}) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_fails(self, gate, capsys):
        assert gate({"headline_seconds": 10.0}, {"headline_seconds": 1.0}) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_missing_baseline_key_skips(self, gate, capsys):
        assert gate({"headline_seconds": 1.0}, {"other": 1}) == 0
        assert "no usable headline_seconds; skipping" in capsys.readouterr().out

    def test_non_dict_baseline_skips(self, gate, capsys):
        assert gate({"headline_seconds": 1.0}, [1, 2, 3]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_no_baseline_skips(self, gate, capsys):
        assert gate({"headline_seconds": 1.0}, None) == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_malformed_current_skips(self, gate, capsys):
        assert gate("{not json", {"headline_seconds": 1.0}) == 0
        assert "not valid JSON" in capsys.readouterr().out

    def test_unusable_current_value_skips(self, gate, capsys):
        assert gate({"headline_seconds": "so fast"}, {"headline_seconds": 1.0}) == 0
        assert "current snapshot has no usable" in capsys.readouterr().out

    def test_missing_current_file_is_usage_error(self, gate, capsys):
        assert gate(None, {"headline_seconds": 1.0}) == 2
        assert "did the benchmark run" in capsys.readouterr().err

    def test_skip_and_regression_mix_still_fails(self, tmp_path, monkeypatch, capsys):
        # one snapshot skips (keyless baseline), the other regresses:
        # the skip must not mask the failure exit code
        monkeypatch.setattr(cr, "REPO_ROOT", tmp_path)
        baselines = {
            "BENCH_skip.json": {},
            "BENCH_slow.json": {"headline_seconds": 1.0},
        }
        monkeypatch.setattr(cr, "load_baseline", lambda name, ref: baselines[name])
        (tmp_path / "BENCH_skip.json").write_text(json.dumps({"headline_seconds": 1.0}))
        (tmp_path / "BENCH_slow.json").write_text(json.dumps({"headline_seconds": 9.0}))
        assert cr.main(["BENCH_skip.json", "BENCH_slow.json"]) == 1
        out = capsys.readouterr().out
        assert "skipping" in out and "REGRESSION" in out
