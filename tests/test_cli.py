"""Tests for the command-line interface (index / query / stats)."""

import pytest

from repro.cli import main

PURCHASES = """
<purchases>
  <purchase>
    <seller location="boston"><item><manufacturer>intel</manufacturer></item></seller>
    <buyer location="newyork"/>
  </purchase>
  <purchase>
    <seller location="seattle"/>
    <buyer location="boston"/>
  </purchase>
</purchases>
"""

DTD = """
<!ELEMENT purchase (seller, buyer)>
<!ELEMENT seller (item*)>
<!ATTLIST seller location CDATA>
<!ELEMENT buyer EMPTY>
<!ATTLIST buyer location CDATA>
<!ELEMENT item (manufacturer?)>
<!ELEMENT manufacturer (#PCDATA)>
"""


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "purchases.xml"
    path.write_text(PURCHASES)
    return path


class TestIndexCommand:
    def test_index_whole_document(self, tmp_path, xml_file, capsys):
        assert main(["index", str(tmp_path / "db"), str(xml_file)]) == 0
        assert "indexed 1 record(s)" in capsys.readouterr().out

    def test_index_with_split(self, tmp_path, xml_file, capsys):
        rc = main(
            ["index", str(tmp_path / "db"), str(xml_file), "--split", "purchase"]
        )
        assert rc == 0
        assert "indexed 2 record(s)" in capsys.readouterr().out

    def test_incremental_indexing(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file), "--split", "purchase"])
        main(["index", db, str(xml_file), "--split", "purchase"])
        capsys.readouterr()
        main(["stats", db])
        assert "documents: 4" in capsys.readouterr().out


class TestQueryCommand:
    def test_query_roundtrip(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file), "--split", "purchase"])
        capsys.readouterr()
        rc = main(["query", db, "/purchases/purchase/seller[location='boston']"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 match(es)" in out

    def test_query_with_wildcards(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file), "--split", "purchase"])
        capsys.readouterr()
        main(["query", db, "//seller[location='boston']"])
        assert "1 match(es)" in capsys.readouterr().out
        main(["query", db, "/purchases/purchase/*[location='boston']"])
        assert "2 match(es)" in capsys.readouterr().out

    def test_verify_flag(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file)])
        capsys.readouterr()
        main(["query", db, "//manufacturer[text='intel']", "--verify"])
        out = capsys.readouterr().out
        assert "verified" in out and "1 match(es)" in out

    def test_show_flag_prints_sequences(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file)])
        capsys.readouterr()
        main(["query", db, "/purchases", "--show"])
        out = capsys.readouterr().out
        assert "doc 0:" in out

    def test_bad_query_reports_error(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file)])
        capsys.readouterr()
        assert main(["query", db, "not a query ["]) == 1
        assert "error:" in capsys.readouterr().err


class TestNodesAndRemoveCommands:
    def test_nodes_command(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file), "--split", "purchase"])
        capsys.readouterr()
        assert main(["nodes", db, "/purchases/purchase/seller"]) == 0
        out = capsys.readouterr().out
        assert "2 node(s) in 2 document(s)" in out
        assert ":seller" in out

    def test_remove_command(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file), "--split", "purchase"])
        capsys.readouterr()
        assert main(["remove", db, "0"]) == 0
        assert "removed 1 document(s)" in capsys.readouterr().out
        main(["stats", db])
        assert "documents: 1" in capsys.readouterr().out

    def test_remove_unknown_id(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file)])
        capsys.readouterr()
        assert main(["remove", db, "99"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSchemaHandling:
    def test_schema_stored_and_reused(self, tmp_path, xml_file, capsys):
        dtd = tmp_path / "schema.dtd"
        dtd.write_text(DTD)
        db = str(tmp_path / "db")
        main(
            [
                "index", db, str(xml_file),
                "--split", "purchase", "--schema", str(dtd),
            ]
        )
        capsys.readouterr()
        # query without --schema: the stored copy must be used, so the
        # sibling order matches and the branching query still answers
        main(["query", db, "/purchases/purchase[seller[location='boston']]/buyer"])
        assert "1 match(es)" in capsys.readouterr().out

    def test_stats_output(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file)])
        capsys.readouterr()
        assert main(["stats", db]) == 0
        out = capsys.readouterr().out
        assert "documents: 1" in out
        assert "combined:" in out
        assert "docid:" in out


class TestExplainAndMetrics:
    BRANCH_QUERY = "/purchases/purchase[buyer]//seller[location='boston']"

    def _db(self, tmp_path, xml_file, capsys):
        db = str(tmp_path / "db")
        main(["index", db, str(xml_file), "--split", "purchase"])
        capsys.readouterr()
        return db

    @pytest.mark.parametrize("engine", ["vist", "rist", "naive"])
    def test_explain_prints_span_tree_per_engine(
        self, tmp_path, xml_file, capsys, engine
    ):
        db = self._db(tmp_path, xml_file, capsys)
        rc = main(
            ["query", db, self.BRANCH_QUERY, "--explain", "--engine", engine]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 match(es)" in out
        assert "query [" in out and "ms]" in out
        assert "translate [" in out
        assert "match alt 0 [" in out
        if engine == "naive":
            assert "naive-walk" in out and "search_states=" in out
        else:
            assert "level 0 [" in out
            assert "page_reads=" in out and "candidates=" in out

    def test_alternate_engines_translate_doc_ids(self, tmp_path, xml_file, capsys):
        """RIST/Naive renumber internally; the CLI must answer with the
        on-disk document ids (doc 1 here — doc 0's seller is in boston
        but has no boston buyer)."""
        db = self._db(tmp_path, xml_file, capsys)
        query = "/purchases/purchase/buyer[location='boston']"
        answers = set()
        for engine in ("vist", "rist", "naive"):
            main(["query", db, query, "--engine", engine])
            out = capsys.readouterr().out
            assert "1 match(es)" in out
            answers.add(out[out.index(":") :])
        assert len(answers) <= 2  # list vs set rendering; same single id
        for engine in ("rist", "naive"):
            main(["query", db, query, "--engine", engine])
            assert "{1}" in capsys.readouterr().out

    def test_stats_json_dumps_full_registry(self, tmp_path, xml_file, capsys):
        import json as _json

        db = self._db(tmp_path, xml_file, capsys)
        main(["query", db, self.BRANCH_QUERY])
        capsys.readouterr()
        assert main(["stats", db, "--json"]) == 0
        snap = _json.loads(capsys.readouterr().out)
        assert snap["documents"] == 2
        for key in ("health", "pager", "queries", "tree"):
            assert key in snap, f"registry dump missing {key!r}"
        assert snap["health"]["status"] == "ok"
        assert set(snap["tree"]) == {"combined", "docid"}
