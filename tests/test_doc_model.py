"""Tests for the XML tree model."""

import pytest

from repro.doc.model import XmlDocument, XmlNode
from repro.errors import DocumentError


def purchase_record() -> XmlNode:
    """The paper's Figure 3 purchase record (values abbreviated)."""
    p = XmlNode("Purchase")
    s = p.element("Seller", ID="s1")
    s.element("Name", text="dell")
    i1 = s.element("Item")
    i1.element("Manufacturer", text="ibm")
    i1.element("Name", text="part#1")
    i2 = i1.element("Item")
    i2.element("Manufacturer", text="part#2")
    s.element("Item").element("Name", text="intel")
    s.element("Location", text="boston")
    b = p.element("Buyer", ID="b1")
    b.element("Location", text="newyork")
    b.element("Name", text="panasia")
    return p


class TestXmlNode:
    def test_label_required(self):
        with pytest.raises(DocumentError):
            XmlNode("")

    def test_fluent_building(self):
        root = XmlNode("a")
        child = root.element("b", text="hi", attr="v")
        assert child.label == "b"
        assert child.text == "hi"
        assert child.attributes == {"attr": "v"}
        assert root.children == [child]

    def test_preorder_is_document_order(self):
        root = XmlNode("r")
        a = root.element("a")
        a.element("a1")
        a.element("a2")
        root.element("b")
        labels = [n.label for n in root.preorder()]
        assert labels == ["r", "a", "a1", "a2", "b"]

    def test_size_and_depth(self):
        p = purchase_record()
        assert p.size() == 14  # elements only; attrs/text not expanded yet
        assert p.depth() == 5  # Purchase > Seller > Item > Item > Manufacturer

    def test_find_all(self):
        p = purchase_record()
        assert len(list(p.find_all("Item"))) == 3
        assert len(list(p.find_all("Name"))) == 4

    def test_equality(self):
        assert purchase_record() == purchase_record()
        other = purchase_record()
        other.children[0].label = "Vendor"
        assert purchase_record() != other


class TestExpanded:
    def test_attributes_become_child_nodes(self):
        node = XmlNode("Seller", attributes={"ID": "s1", "Area": "ne"})
        ex = node.expanded()
        assert [c.label for c in ex.children] == ["Area", "ID"]
        assert ex.children[0].children[0].is_value
        assert ex.children[0].children[0].value == "ne"

    def test_text_becomes_value_leaf(self):
        node = XmlNode("Name", text="dell")
        ex = node.expanded()
        assert len(ex.children) == 1
        assert ex.children[0].is_value
        assert ex.children[0].value == "dell"

    def test_value_label_cannot_collide_with_element(self):
        node = XmlNode("Name", text="Name")
        leaf = node.expanded().children[0]
        assert leaf.is_value
        assert leaf.label != "Name"

    def test_expanded_is_a_copy(self):
        node = XmlNode("a", text="t")
        ex = node.expanded()
        ex.label = "changed"
        assert node.label == "a"

    def test_value_accessor_rejects_elements(self):
        with pytest.raises(DocumentError):
            XmlNode("a").value

    def test_paper_figure3_shape(self):
        ex = purchase_record().expanded()
        # Figure 3 counts: 2,934 ... here just structural sanity:
        # Purchase -> Seller(+ID attr) and Buyer(+ID attr).
        seller = ex.children[0]
        assert seller.label == "Seller"
        assert seller.children[0].label == "ID"
        # every leaf under an attribute is a value
        for node in ex.preorder():
            if node.is_value:
                assert not node.children


class TestSerialization:
    def test_to_xml_roundtrip_shape(self):
        p = purchase_record()
        text = p.to_xml()
        assert text.startswith("<Purchase>")
        assert "</Purchase>" in text
        assert 'ID="s1"' in text

    def test_escaping(self):
        node = XmlNode("a", attributes={"q": 'x"<>&'}, text="1 < 2 & 3 > 2")
        text = node.to_xml()
        assert "&lt;" in text and "&amp;" in text and "&quot;" in text

    def test_document_wrapper(self):
        doc = XmlDocument(root=purchase_record(), name="p1.xml")
        assert doc.size() == doc.root.size()
        assert doc.depth() == 5
        assert doc.to_xml() == doc.root.to_xml()
