"""The differential oracle: generator, reference evaluator, driver, shrinker.

The tier-1 tests keep the sweep small; the CI correctness job runs the
``slow``-marked sweep (>= 200 document/query pairs across all 12 ViST
configurations plus Naive/RIST and the join baselines).
"""

import copy
import json

import pytest

from repro.doc.model import XmlNode
from repro.query.xpath import parse_xpath
from repro.sequence.vocabulary import ValueHasher
from repro.testing.generator import DocQueryGenerator
from repro.testing.oracle import (
    VIST_CONFIGS,
    DifferentialOracle,
    Divergence,
    OracleReport,
)
from repro.testing.reference import reference_matches, reference_results


class TestGenerator:
    def test_deterministic_per_seed(self):
        a, b = DocQueryGenerator(99), DocQueryGenerator(99)
        corpus_a, corpus_b = a.corpus(4, 10), b.corpus(4, 10)
        assert [d.to_xml() for d in corpus_a] == [d.to_xml() for d in corpus_b]
        assert a.query(corpus_a).to_xpath() == b.query(corpus_b).to_xpath()

    def test_seeds_differ(self):
        a = DocQueryGenerator(1).corpus(3, 10)
        b = DocQueryGenerator(2).corpus(3, 10)
        assert [d.to_xml() for d in a] != [d.to_xml() for d in b]

    def test_queries_parse_back(self):
        # Queries with a descendant-axis branch render as "[/..." which
        # the XPath-subset parser does not accept; the oracle feeds query
        # *trees* to the indexes, so parse-back only matters for the rest.
        generator = DocQueryGenerator(7)
        corpus = generator.corpus(3, 10)
        parseable = 0
        for _ in range(20):
            xpath = generator.query(corpus).to_xpath()
            if "[/" in xpath:
                continue
            assert parse_xpath(xpath) is not None
            parseable += 1
        assert parseable > 0


class TestReferenceEvaluator:
    def setup_method(self):
        self.hasher = ValueHasher()
        self.doc = XmlNode("r")
        a = self.doc.element("a")
        a.element("b", text="v1")
        self.doc.element("c", k="v2")

    def matches(self, xpath: str) -> bool:
        return reference_matches(self.doc, parse_xpath(xpath), self.hasher)

    def test_child_and_descendant_axes(self):
        assert self.matches("/r/a/b")
        assert self.matches("//b")
        assert not self.matches("/r/b")  # b is not a direct child of r

    def test_values_and_attributes(self):
        assert self.matches("/r/a/b[text='v1']")
        assert not self.matches("/r/a/b[text='nope']")
        assert self.matches("/r/c[k='v2']")  # attributes are child nodes

    def test_wildcards(self):
        assert self.matches("/r/*/b")
        assert self.matches("/*")
        assert not self.matches("/r/a/b/*")  # value leaves don't count

    def test_results_are_corpus_positions(self):
        other = XmlNode("r")
        other.element("x")
        corpus = [self.doc, other, copy.deepcopy(self.doc)]
        assert reference_results(corpus, parse_xpath("//b"), self.hasher) == [0, 2]


class TestOracleRuns:
    def test_small_sweep_clean(self):
        oracle = DifferentialOracle(
            docs_per_seed=3, doc_size=8, queries_per_seed=2
        )
        report = oracle.run(range(3))
        assert report.ok, [d.to_dict() for d in report.divergences]
        # queries per seed + the post-deletion re-check
        assert report.pairs == 3 * (2 + 1)
        assert report.families == len(VIST_CONFIGS) + 4

    @pytest.mark.slow
    def test_full_sweep_200_pairs(self):
        oracle = DifferentialOracle()
        report = oracle.run(range(40))
        assert report.pairs >= 200
        assert report.ok, [d.to_dict() for d in report.divergences]

    def test_artifact_roundtrip(self, tmp_path):
        report = OracleReport(
            seeds=1,
            pairs=1,
            families=1,
            divergences=[
                Divergence(
                    seed=17,
                    family="vist[cache+batched+wal]",
                    kind="exact",
                    xpath="/r/a",
                    expected=[0],
                    got=[],
                    documents=["<r><a/></r>"],
                )
            ],
        )
        report.write_artifacts(str(tmp_path))
        data = json.loads((tmp_path / "oracle-failures.json").read_text())
        assert data[0]["seed"] == 17
        assert "--start 17" in data[0]["reproduce"]

    def test_cli_entrypoint(self, capsys):
        from repro.testing.oracle import main

        rc = main(["--seeds", "1", "--docs", "2", "--doc-size", "6", "--queries", "1"])
        assert rc == 0
        assert "0 divergence(s)" in capsys.readouterr().out


class _BrokenOracle(DifferentialOracle):
    """Stub whose evaluation 'fails' iff some doc still holds label `x`
    AND the query still has >= 2 nodes — exercises the shrinker without
    needing a real index bug."""

    def _evaluate_case(self, family, kind, docs, query):
        has_x = any(
            any(node.label == "x" for node in doc.preorder()) for doc in docs
        )
        big_query = sum(1 for _ in query.preorder()) >= 2
        if has_x and big_query:
            return [0], []  # divergence
        return [0], [0]


class TestShrinker:
    def test_shrinks_to_minimal_failing_case(self):
        oracle = _BrokenOracle()
        docs = []
        for i in range(4):
            doc = XmlNode("r")
            doc.element("a").element("b", text="t")
            if i == 2:
                doc.element("x")
            docs.append(doc)
        query = parse_xpath("/r[a/b][c]/d")
        shrunk_docs, shrunk_query = oracle._shrink("naive", "exact", docs, query)
        # only the document carrying `x` survives, stripped to the core
        assert len(shrunk_docs) == 1
        assert any(n.label == "x" for n in shrunk_docs[0].preorder())
        assert shrunk_docs[0].size() <= 2
        # the query is reduced to the minimum that still "fails"
        assert sum(1 for _ in shrunk_query.preorder()) == 2
