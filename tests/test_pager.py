"""Tests for the page storage layer (memory + file pagers, buffer pool)."""

import pytest

from repro.errors import PageError
from repro.storage.cache import BufferPool
from repro.storage.pager import FilePager, MemoryPager


@pytest.fixture(params=["memory", "file", "buffered"])
def pager(request, tmp_path):
    if request.param == "memory":
        p = MemoryPager(page_size=256)
    elif request.param == "file":
        p = FilePager(tmp_path / "pages.db", page_size=256)
    else:
        p = BufferPool(FilePager(tmp_path / "pages.db", page_size=256), capacity=4)
    yield p
    p.close()


class TestPagerContract:
    def test_allocate_returns_distinct_ids(self, pager):
        ids = [pager.allocate() for _ in range(10)]
        assert len(set(ids)) == 10
        assert all(i >= 1 for i in ids)

    def test_fresh_page_is_zeroed(self, pager):
        pid = pager.allocate()
        assert pager.read(pid) == b"\x00" * pager.page_size

    def test_write_read_roundtrip(self, pager):
        pid = pager.allocate()
        payload = bytes(range(200))
        pager.write(pid, payload)
        data = pager.read(pid)
        assert data[:200] == payload
        assert len(data) == pager.page_size

    def test_write_pads_short_payload(self, pager):
        pid = pager.allocate()
        pager.write(pid, b"xy")
        assert pager.read(pid)[:3] == b"xy\x00"

    def test_write_rejects_oversized(self, pager):
        pid = pager.allocate()
        with pytest.raises(PageError):
            pager.write(pid, b"z" * (pager.page_size + 1))

    def test_freed_page_is_recycled(self, pager):
        pid = pager.allocate()
        pager.write(pid, b"dead")
        pager.free(pid)
        again = pager.allocate()
        assert again == pid
        assert pager.read(again) == b"\x00" * pager.page_size

    def test_metadata_roundtrip(self, pager):
        assert pager.get_metadata() == b""
        pager.set_metadata(b"root=42")
        assert pager.get_metadata() == b"root=42"

    def test_read_unknown_page(self, pager):
        with pytest.raises(PageError):
            pager.read(999)

    def test_many_pages(self, pager):
        payloads = {}
        for i in range(50):
            pid = pager.allocate()
            payloads[pid] = bytes([i]) * 100
            pager.write(pid, payloads[pid])
        for pid, payload in payloads.items():
            assert pager.read(pid)[:100] == payload


class TestMemoryPager:
    def test_live_page_count(self):
        p = MemoryPager()
        a = p.allocate()
        p.allocate()
        assert p.live_page_count == 2
        p.free(a)
        assert p.live_page_count == 1
        assert p.page_count == 2

    def test_closed_pager_rejects_ops(self):
        p = MemoryPager()
        p.close()
        with pytest.raises(PageError):
            p.allocate()

    def test_min_page_size(self):
        with pytest.raises(PageError):
            MemoryPager(page_size=16)


class TestFilePager:
    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "p.db"
        p = FilePager(path, page_size=256)
        pid = p.allocate()
        p.write(pid, b"persisted")
        p.set_metadata(b"meta!")
        p.close()

        q = FilePager(path)
        assert q.page_size == 256
        assert q.read(pid)[:9] == b"persisted"
        assert q.get_metadata() == b"meta!"
        q.close()

    def test_freelist_persists(self, tmp_path):
        path = tmp_path / "p.db"
        p = FilePager(path, page_size=256)
        a = p.allocate()
        p.allocate()
        p.free(a)
        p.close()

        q = FilePager(path)
        assert q.allocate() == a
        q.close()

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"not a page file, definitely" * 20)
        with pytest.raises(PageError):
            FilePager(path)

    def test_metadata_too_large(self, tmp_path):
        p = FilePager(tmp_path / "p.db", page_size=256)
        with pytest.raises(PageError):
            p.set_metadata(b"x" * 300)
        p.close()


class TestBufferPool:
    def test_hits_and_misses(self, tmp_path):
        pool = BufferPool(FilePager(tmp_path / "p.db", page_size=256), capacity=2)
        a = pool.allocate()
        pool.write(a, b"a")
        pool.read(a)
        assert pool.stats.hits >= 1

    def test_eviction_writes_back(self, tmp_path):
        base = FilePager(tmp_path / "p.db", page_size=256)
        pool = BufferPool(base, capacity=2)
        pids = [pool.allocate() for _ in range(5)]
        for i, pid in enumerate(pids):
            pool.write(pid, bytes([i + 1]) * 10)
        assert pool.stats.evictions > 0
        for i, pid in enumerate(pids):
            assert pool.read(pid)[:10] == bytes([i + 1]) * 10

    def test_flush_clears_dirty(self, tmp_path):
        base = FilePager(tmp_path / "p.db", page_size=256)
        pool = BufferPool(base, capacity=8)
        pid = pool.allocate()
        pool.write(pid, b"dirty")
        pool.flush()
        assert base.read(pid)[:5] == b"dirty"

    def test_capacity_validation(self):
        with pytest.raises(PageError):
            BufferPool(MemoryPager(), capacity=0)

    def test_hit_rate_zero_when_untouched(self):
        pool = BufferPool(MemoryPager(), capacity=2)
        assert pool.stats.hit_rate == 0.0
