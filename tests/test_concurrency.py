"""The concurrent read path: locks, shared caches, and the oracle hammer.

Layers covered, bottom up:

* :class:`repro.exec.locks.RWLock` unit semantics (reentrancy, writer
  exclusion, the upgrade refusal, writer preference);
* the B+Tree descent-slot regression: ``get``/``range`` from reader
  threads racing an inserting writer must never see a torn or stale
  descent (the old bare-tuple ``_descent`` could pair a pre-split leaf
  with a post-split structure);
* shared caches under contention: :class:`BufferPool`,
  :class:`PostingCache`, the metrics registry;
* :class:`repro.exec.executor.QueryExecutor` API contracts (ordering,
  error capture, fresh guard per query);
* the multi-threaded differential-oracle hammer: K worker threads run M
  seeded queries (``verify=True``) against one shared on-disk ViST index
  while a writer thread interleaves inserts and removes of noise
  documents; every verified result must equal the single-threaded
  reference evaluator's answer and the index must pass ``repro check``'s
  invariants afterwards.

The first hammer configuration runs in tier-1; the full sweep is marked
``slow`` and runs in the CI concurrency job.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.doc.model import XmlNode
from repro.errors import QueryBudgetExceededError
from repro.exec import QueryExecutor, QueryOutcome, RWLock
from repro.index.guard import QueryGuard
from repro.index.postings import PostingCache, PostingGroup
from repro.index.vist import VistIndex
from repro.labeling.scope import Scope
from repro.obs.metrics import MetricsRegistry
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree
from repro.storage.cache import BufferPool
from repro.storage.docstore import FileDocStore
from repro.storage.pager import FilePager
from repro.testing.generator import DocQueryGenerator
from repro.testing.invariants import assert_invariants
from repro.testing.reference import reference_results


def _run_threads(targets, timeout=60.0):
    """Start every target, join all, and re-raise the first exception."""
    errors: list[BaseException] = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout)
        assert not thread.is_alive(), "thread did not finish (deadlock?)"
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# RWLock semantics


class TestRWLock:
    def test_concurrent_readers_overlap(self):
        lock = RWLock()
        barrier = threading.Barrier(3, timeout=10)

        def reader():
            with lock.read():
                barrier.wait()  # only passes if all 3 hold the lock at once

        _run_threads([reader] * 3)

    def test_writer_is_exclusive(self):
        lock = RWLock()
        active = {"readers": 0, "writers": 0}
        violations: list[str] = []

        def reader():
            for _ in range(200):
                with lock.read():
                    active["readers"] += 1
                    if active["writers"]:
                        violations.append("reader overlapped a writer")
                    active["readers"] -= 1

        def writer():
            for _ in range(100):
                with lock.write():
                    active["writers"] += 1
                    if active["writers"] != 1 or active["readers"]:
                        violations.append("writer was not exclusive")
                    active["writers"] -= 1

        _run_threads([reader, reader, writer, writer])
        assert not violations

    def test_read_reentrancy(self):
        lock = RWLock()
        with lock.read():
            with lock.read():
                pass
        # fully released: a writer can get in from this same thread
        with lock.write():
            pass

    def test_write_reentrancy_and_read_within_write(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                with lock.read():  # query_nodes -> query under remove etc.
                    pass

    def test_upgrade_raises_instead_of_deadlocking(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()
        with lock.write():  # the failed upgrade left the lock usable
            pass

    def test_release_write_by_non_holder_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_release_read_without_acquire_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()

    def test_writer_preference_over_queued_reader(self):
        lock = RWLock()
        order: list[str] = []
        reader_holding = threading.Event()
        release_reader = threading.Event()

        def first_reader():
            with lock.read():
                reader_holding.set()
                assert release_reader.wait(10)

        def writer():
            with lock.write():
                order.append("writer")

        def late_reader():
            with lock.read():
                order.append("reader")

        t1 = threading.Thread(target=first_reader)
        t1.start()
        assert reader_holding.wait(10)
        tw = threading.Thread(target=writer)
        tw.start()
        while not lock._writers_waiting:  # writer is registered as waiting
            time.sleep(0.001)
        tr = threading.Thread(target=late_reader)
        tr.start()
        time.sleep(0.02)  # give the late reader a chance to (wrongly) enter
        assert order == []  # both blocked behind the first reader
        release_reader.set()
        for thread in (t1, tw, tr):
            thread.join(10)
        assert order[0] == "writer"  # the waiting writer beat the reader


# ---------------------------------------------------------------------------
# B+Tree descent-slot regression: readers racing an inserting writer


def test_bptree_descent_race_get_and_range_vs_insert():
    """Two-thread hammer for the descent-reuse race (fixed by _DescentSlot).

    The committed region uses ``a``-prefixed keys; the writer appends
    ``w``-prefixed keys, so every split keeps bumping the structure
    version (invalidating descents mid-read) while the readers' own keys
    stay put.  Committed keys must always be found and range scans over
    the committed region must always be complete — a stale or torn
    descent slot breaks both.
    """
    tree = BPlusTree()
    committed = [f"a{i:06d}".encode() for i in range(1500)]
    for key in committed:
        tree.insert(key, b"v")
    committed_set = set(committed)
    done = threading.Event()

    def writer():
        try:
            for i in range(6000):
                tree.insert(f"w{i:08d}".encode(), b"x")
        finally:
            done.set()

    def point_reader():
        rng = random.Random(7)
        while not done.is_set():
            key = rng.choice(committed)
            assert tree.get(key) == b"v", f"committed key lost: {key!r}"
        for key in committed:  # one full pass after the writer stopped
            assert tree.get(key) == b"v"

    def range_reader():
        while not done.is_set():
            seen = {key for key, _ in tree.range(b"a", b"b")}
            assert seen == committed_set
        assert {key for key, _ in tree.range(b"a", b"b")} == committed_set

    _run_threads([writer, point_reader, range_reader])
    assert len(tree) == 1500 + 6000


# ---------------------------------------------------------------------------
# shared caches under contention


def test_buffer_pool_concurrent_reads(tmp_path):
    base = FilePager(tmp_path / "pool.db")
    pids = []
    for i in range(8):
        pid = base.allocate()
        base.write(pid, bytes([i]) * base.page_size)
        pids.append(pid)
    base.sync()
    base.close()

    pool = BufferPool(FilePager(tmp_path / "pool.db"), capacity=3)
    try:

        def reader():
            rng = random.Random(threading.get_ident())
            for _ in range(400):
                i = rng.randrange(len(pids))
                assert pool.read(pids[i]) == bytes([i]) * pool.page_size

        _run_threads([reader] * 4)
        stats = pool.stats
        assert stats.hits + stats.misses == 4 * 400
        assert 0.0 <= stats.hit_rate <= 1.0
    finally:
        pool.close()


def test_posting_cache_concurrent_lookup_single_install():
    cache = PostingCache(capacity=4)
    load_calls = []
    gate = threading.Barrier(4, timeout=10)
    results: list[PostingGroup] = []

    def loader():
        load_calls.append(1)
        time.sleep(0.005)  # widen the miss window
        return iter([(("x",), Scope(1, 10))])

    def worker():
        gate.wait()
        results.append(cache.lookup("sym", 1, ("x",), loader))

    _run_threads([worker] * 4)
    assert len(results) == 4
    # first install wins: everyone ends up holding the same resident group
    assert len({id(group) for group in results}) == 1
    assert len(cache) == 1
    stats = cache.stats
    assert stats.hits + stats.misses == 4
    assert 0.0 <= stats.hit_rate <= 1.0


def test_metrics_registry_snapshot_under_load():
    registry = MetricsRegistry()
    counter = registry.counter("work.items")

    def incrementer():
        for _ in range(20_000):
            counter.inc()

    def registrar():
        for i in range(200):
            registry.register(f"late.source{i}", lambda i=i: i)

    def snapshotter():
        for _ in range(300):
            snapshot = registry.snapshot()  # must not blow up mid-register
            assert "work" in snapshot

    _run_threads([incrementer, incrementer, registrar, snapshotter, snapshotter])
    assert registry.snapshot()["work"]["items"] == 40_000


# ---------------------------------------------------------------------------
# QueryExecutor API


def _tiny_index() -> VistIndex:
    from repro.doc.parser import parse_document

    index = VistIndex()
    for i in range(4):
        index.add(
            parse_document(
                f"<site><item><location>US</location>"
                f"<name>v{i}</name></item></site>"
            )
        )
    return index


class TestQueryExecutor:
    def test_outcomes_keep_submission_order(self):
        index = _tiny_index()
        queries = ["/site//item", "/site//item[location='US']", "/site"] * 4
        expected = [index.query(q) for q in queries]
        with QueryExecutor(index, threads=3) as executor:
            outcomes = executor.run(queries)
        assert [o.position for o in outcomes] == list(range(len(queries)))
        assert [o.unwrap() for o in outcomes] == expected
        assert all(o.ok and o.elapsed_ms >= 0.0 for o in outcomes)

    def test_one_poisoned_query_does_not_kill_the_batch(self):
        index = _tiny_index()
        guard_budget = iter([None, QueryGuard(max_steps=1), None])
        with QueryExecutor(
            index, threads=2, guard_factory=lambda: next(guard_budget)
        ) as executor:
            outcomes = executor.run(["/site//item"] * 3)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, QueryBudgetExceededError)
        with pytest.raises(QueryBudgetExceededError):
            outcomes[1].unwrap()

    def test_fresh_guard_per_submission(self):
        index = _tiny_index()
        built: list[QueryGuard] = []

        def factory() -> QueryGuard:
            guard = QueryGuard(max_steps=10_000)
            built.append(guard)
            return guard

        with QueryExecutor(index, threads=2, guard_factory=factory) as executor:
            outcomes = executor.run(["/site//item"] * 5)
        assert len(built) == 5
        assert len({id(g) for g in built}) == 5
        assert [o.guard for o in outcomes] == built

    def test_submit_after_close_raises(self):
        executor = QueryExecutor(_tiny_index(), threads=1)
        executor.close()
        with pytest.raises(RuntimeError):
            executor.submit("/site")

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            QueryExecutor(_tiny_index(), threads=0)

    def test_results_unwraps(self):
        index = _tiny_index()
        with QueryExecutor(index, threads=2, verify=True) as executor:
            assert executor.results(["/site//item"]) == [
                index.query("/site//item", verify=True)
            ]

    def test_outcome_repr_hides_guard(self):
        outcome = QueryOutcome(position=0, query="/q", guard=QueryGuard())
        assert "guard" not in repr(outcome)


# ---------------------------------------------------------------------------
# the multi-threaded differential-oracle hammer


def _noise_doc(i: int) -> XmlNode:
    # labels disjoint from DocQueryGenerator's alphabet ("a".."d"), so no
    # seeded query can match a noise document except through a wildcard —
    # and wildcard hits are filtered out by the seeded-id projection below
    root = XmlNode("z1")
    root.element("z2", text=f"n{i}")
    return root


def _open_hammer_index(tmp_path) -> VistIndex:
    return VistIndex(
        SequenceEncoder(),
        docstore=FileDocStore(tmp_path / "docs.dat"),
        pager=BufferPool(FilePager(tmp_path / "vist.db"), capacity=64),
    )


def _run_hammer(tmp_path, *, seed, docs, threads, submissions, writer_ops):
    """K threads x M verified queries vs the reference, writer interleaved."""
    generator = DocQueryGenerator(seed)
    corpus = generator.corpus(docs, 12)
    queries = [generator.query(corpus) for _ in range(12)]
    hasher = SequenceEncoder().hasher
    expected = {
        pos: reference_results(corpus, query, hasher)
        for pos, query in enumerate(queries)
    }

    index = _open_hammer_index(tmp_path)
    try:
        ids = index.add_all(corpus)
        id_to_pos = {doc_id: pos for pos, doc_id in enumerate(ids)}
        seeded_ids = set(ids)

        noise_live: list[int] = []
        writer_done = threading.Event()
        writer_errors: list[BaseException] = []

        def writer():
            try:
                rng = random.Random(seed + 1)
                for i in range(writer_ops):
                    noise_live.append(index.add(_noise_doc(i)))
                    if len(noise_live) > 2 and rng.random() < 0.4:
                        index.remove(noise_live.pop(0))
                    time.sleep(0.001)  # spread writes across the query window
            except BaseException as exc:  # noqa: BLE001 - asserted below
                writer_errors.append(exc)
            finally:
                writer_done.set()

        def snapshotter():
            while not writer_done.is_set():
                snapshot = index.metrics.snapshot()
                assert "queries" in snapshot
            index.metrics.snapshot()

        workload = [queries[i % len(queries)] for i in range(submissions)]
        writer_thread = threading.Thread(target=writer)
        stats_thread = threading.Thread(target=snapshotter)
        writer_thread.start()
        stats_thread.start()
        with QueryExecutor(index, threads=threads, verify=True) as executor:
            outcomes = executor.run(workload)
        writer_thread.join(60)
        stats_thread.join(60)
        assert not writer_thread.is_alive() and not stats_thread.is_alive()
        assert not writer_errors, f"writer thread failed: {writer_errors[0]!r}"

        for outcome in outcomes:
            assert outcome.ok, (
                f"query #{outcome.position} "
                f"{workload[outcome.position].to_xpath()!r} raised: "
                f"{outcome.error!r}"
            )
            got = sorted(
                id_to_pos[doc_id]
                for doc_id in outcome.result
                if doc_id in seeded_ids
            )
            want = expected[outcome.position % len(queries)]
            assert got == want, (
                f"query #{outcome.position} "
                f"{workload[outcome.position].to_xpath()!r}: "
                f"verified={got} reference={want}"
            )

        # the writer's surviving noise documents are really indexed
        live = sorted(index.query("/z1", verify=True))
        assert live == sorted(noise_live)

        # `repro check` semantics: every structural invariant still holds
        assert_invariants(index)
    finally:
        index.flush()
        index.close()
        index.docstore.close()


def test_oracle_hammer_first_config(tmp_path):
    """Tier-1 hammer: 4 threads, 36 verified queries, interleaved writer."""
    _run_hammer(
        tmp_path, seed=11, docs=10, threads=4, submissions=36, writer_ops=30
    )


@pytest.mark.slow
@pytest.mark.parametrize("seed", [23, 37, 59])
def test_oracle_hammer_full_sweep(tmp_path, seed):
    """CI sweep: more seeds, more submissions, longer writer interleaving."""
    _run_hammer(
        tmp_path,
        seed=seed,
        docs=14,
        threads=4,
        submissions=200,
        writer_ops=120,
    )
