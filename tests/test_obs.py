"""Observability layer: metrics primitives, registry, query traces.

The contract under test is the one docs/INTERNALS.md section 10 states:
hot paths keep their plain attribute increments (``MetricSet`` only adds
a read-time ``snapshot``), the registry pulls sources lazily into one
JSON-ready dump, and a :class:`~repro.obs.QueryTrace` threaded through
``query()`` yields a per-stage span tree — while ``trace=None`` leaves
the evaluation path untouched.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.doc.parser import parse_document
from repro.index.naive import NaiveIndex
from repro.index.rist import RistIndex
from repro.index.vist import VistIndex
from repro.obs import Counter, Gauge, Histogram, MetricSet, MetricsRegistry, QueryTrace


# ---------------------------------------------------------------------------
# primitives


class TestCounterGauge:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        counter.value += 2  # the hot-path form
        assert counter.snapshot() == 7

    def test_gauge(self):
        gauge = Gauge()
        gauge.set(3.5)
        assert gauge.snapshot() == 3.5
        gauge.set(1)
        assert gauge.snapshot() == 1


class TestHistogram:
    def test_exact_aggregates_and_percentiles(self):
        hist = Histogram()
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(5050.0)
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert snap["mean"] == pytest.approx(50.5)
        # nearest-rank over 100 evenly spaced samples
        assert snap["p50"] == pytest.approx(50.0, abs=1.0)
        assert snap["p95"] == pytest.approx(95.0, abs=1.0)
        assert snap["p99"] == pytest.approx(99.0, abs=1.0)

    def test_empty_snapshot_is_all_none(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["p50"] is None and snap["mean"] is None

    def test_reservoir_rotates_but_totals_stay_exact(self):
        hist = Histogram(max_samples=4)
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        # the next two overwrite the two oldest slots
        hist.observe(100.0)
        hist.observe(200.0)
        assert hist.count == 6
        assert hist.total == pytest.approx(310.0)
        assert hist.min == 1.0 and hist.max == 200.0
        assert sorted(hist._samples) == [3.0, 4.0, 100.0, 200.0]
        # percentiles describe the retained window only
        assert hist.percentile(100) == 200.0

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            Histogram(max_samples=0)


@dataclass
class _SampleStats(MetricSet):
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TestMetricSet:
    def test_snapshot_reads_fields_and_properties(self):
        stats = _SampleStats()
        stats.hits += 3
        stats.misses += 1
        assert stats.snapshot() == {"hits": 3, "misses": 1, "hit_rate": 0.75}

    def test_real_stat_bundles_are_metric_sets(self):
        from repro.index.matching import MatchStats
        from repro.index.postings import PostingCacheStats
        from repro.storage.bptree import TreeStats
        from repro.storage.cache import CacheStats

        for cls in (MatchStats, PostingCacheStats, CacheStats):
            snap = cls().snapshot()
            assert snap and all(not k.startswith("_") for k in snap)
        assert "hit_rate" in CacheStats().snapshot()
        tree = TreeStats(
            entries=4, height=1, leaf_pages=2, internal_pages=1,
            page_size=4096, used_bytes=100,
        ).snapshot()
        assert tree["total_pages"] == 3  # properties join the dump


# ---------------------------------------------------------------------------
# registry


class TestMetricsRegistry:
    def test_counter_is_create_or_return(self):
        registry = MetricsRegistry()
        a = registry.counter("x")
        a.inc()
        assert registry.counter("x") is a
        assert registry.snapshot() == {"x": 1}

    def test_type_conflict_is_loud(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_dotted_names_nest(self):
        registry = MetricsRegistry()
        registry.counter("pager.reads").inc(5)
        registry.register("pager.cache", lambda: {"hits": 1})
        registry.counter("queries").inc()
        snap = registry.snapshot()
        assert snap == {
            "pager": {"reads": 5, "cache": {"hits": 1}},
            "queries": 1,
        }

    def test_callable_and_metricset_sources(self):
        registry = MetricsRegistry()
        stats = _SampleStats(hits=2)
        registry.register("cache", stats)
        registry.register("depth", lambda: 7)
        snap = registry.snapshot()
        assert snap["cache"]["hits"] == 2
        assert snap["depth"] == 7

    def test_failing_source_does_not_abort_the_dump(self):
        registry = MetricsRegistry()
        registry.counter("good").inc()
        registry.register("bad", lambda: 1 / 0)
        snap = registry.snapshot()
        assert snap["good"] == 1
        assert snap["bad"].startswith("<error: ZeroDivisionError")

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.register("x", lambda: 1)
        registry.unregister("x")
        registry.unregister("x")  # idempotent
        assert registry.names() == []
        assert registry.snapshot() == {}


# ---------------------------------------------------------------------------
# traces


class TestQueryTrace:
    def test_nesting_and_to_dict(self):
        trace = QueryTrace()
        outer = trace.begin("query", xpath="/a")
        inner = trace.begin("match", alt=0)
        trace.end(inner, candidates=3)
        trace.end(outer, results=1)
        tree = trace.to_dict()
        (root,) = tree["spans"]
        assert root["name"] == "query" and root["results"] == 1
        (child,) = root["children"]
        assert child["name"] == "match" and child["candidates"] == 3
        assert child["duration_ms"] <= root["duration_ms"]

    def test_end_closes_abandoned_children(self):
        """A guard exception can unwind past open spans; ending the
        parent must close them so durations stop accumulating."""
        trace = QueryTrace()
        outer = trace.begin("query")
        trace.begin("level 0")  # never explicitly ended
        trace.end(outer)
        assert outer.t1 is not None
        assert outer.children[0].t1 is not None
        # the stack is clean: the next span is a new root
        trace.begin("query2")
        assert len(trace.roots) == 2

    def test_span_context_manager(self):
        trace = QueryTrace()
        with trace.span("verify", candidates=2) as span:
            span.annotate(verified=1)
        (root,) = trace.roots
        assert root.meta == {"candidates": 2, "verified": 1}
        assert root.t1 is not None

    def test_render_shape(self):
        trace = QueryTrace()
        outer = trace.begin("query", xpath="/a/b")
        trace.end(trace.begin("translate"), alternatives=2)
        trace.end(trace.begin("match alt 0"), doc_ids=1)
        trace.end(outer)
        text = trace.render()
        lines = text.splitlines()
        assert lines[0].startswith("query [")
        assert "xpath=/a/b" in lines[0]
        assert lines[1].startswith("├─ translate [")
        assert lines[2].startswith("└─ match alt 0 [")


# ---------------------------------------------------------------------------
# traces + registry threaded through the indexes


def _tiny_index(cls):
    index = cls()
    for i in range(3):
        index.add(
            parse_document(
                f"<site><item><location>US</location><name>v{i}</name></item></site>"
            )
        )
    return index


@pytest.mark.parametrize("cls", [VistIndex, RistIndex, NaiveIndex])
def test_query_with_trace_matches_untraced_answer(cls):
    index = _tiny_index(cls)
    plain = index.query("/site//item[location='US']")
    trace = QueryTrace()
    traced = index.query("/site//item[location='US']", trace=trace)
    assert traced == plain == [0, 1, 2]
    (root,) = [s for s in trace.roots if s.name == "query"]
    names = [child.name for child in root.children]
    assert "translate" in names
    assert any(name.startswith("match alt") for name in names)
    assert root.meta["results"] == 3
    # the rendered tree round-trips to JSON via to_dict
    json.dumps(trace.to_dict())


def test_vist_trace_has_per_level_spans_with_page_accounting():
    index = _tiny_index(VistIndex)
    trace = QueryTrace()
    index.query("/site/item[location='US'][name]", trace=trace)
    levels = [
        span
        for root in trace.roots
        for alt in root.children
        for span in alt.children
        if span.name.startswith("level ")
    ]
    assert levels, "batched matcher produced no per-level spans"
    for span in levels:
        for key in (
            "item",
            "frontier_in",
            "frontier_out",
            "range_queries",
            "candidates",
            "page_reads",
        ):
            assert key in span.meta, f"{span.name} missing {key}"


@pytest.mark.parametrize("cls", [VistIndex, RistIndex, NaiveIndex])
def test_index_metrics_registry_dump(cls):
    index = _tiny_index(cls)
    index.query("/site//item")
    index.query("/site//item[location='US']")
    snap = index.metrics.snapshot()
    assert snap["queries"]["total"] == 2
    assert snap["queries"]["degraded"] == 0
    assert snap["queries"]["latency_ms"]["count"] == 2
    assert snap["health"]["status"] == "ok"
    json.dumps(snap)  # the whole dump must be JSON-ready


def test_vist_metrics_cover_storage_and_caches():
    index = _tiny_index(VistIndex)
    index.query("/site//item[location='US']")
    snap = index.metrics.snapshot()
    assert snap["match"]["range_queries"] > 0
    assert "hit_rate" in snap["postings"]
    assert snap["postings"]["groups"] >= 1
    assert "reads" in snap["pager"]
    assert set(snap["tree"]) == {"combined", "docid"}
    assert snap["tree"]["combined"]["entries"] > 0
    assert snap["tree"]["combined"]["total_pages"] >= 1


def test_degraded_query_is_counted(tmp_path):
    from repro.storage.docstore import FileDocStore
    from repro.storage.pager import FilePager, page_offset

    index = VistIndex(
        pager=FilePager(tmp_path / "v.db"),
        docstore=FileDocStore(tmp_path / "d.dat"),
    )
    for i in range(4):
        index.add(parse_document(f"<a><b>x{i}</b></a>"))
    index.flush()
    index.close()
    index.docstore.close()
    npages = (tmp_path / "v.db").stat().st_size // page_offset(1, 4096)
    with open(tmp_path / "v.db", "r+b") as fh:
        offset = page_offset(npages - 1, 4096) + 80
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))
    reopened = VistIndex(
        pager=FilePager(tmp_path / "v.db"),
        docstore=FileDocStore(tmp_path / "d.dat"),
    )
    try:
        trace = QueryTrace()
        assert reopened.query("/a/b", verify=True, trace=trace) == [0, 1, 2, 3]
        snap = reopened.metrics.snapshot()
        if not reopened.health.ok:  # the corrupt page was on the query path
            assert snap["queries"]["degraded"] == 1
            spans = [s.name for root in trace.roots for s in root.children]
            assert "degraded-fallback" in spans
    finally:
        reopened.close()
        reopened.docstore.close()
