"""Invariant checkers: green on healthy indexes, loud on corruption.

The positive tests cover fresh, reopened, mutated and underflow-stressed
indexes; the negative tests corrupt live structures in memory and assert
the matching checker reports a violation (a checker that cannot fail
checks nothing).
"""

import pytest

from repro.doc.model import XmlNode
from repro.index.store import ROOT_KEY, META_MAX_DEPTH_KEY, decode_node_key
from repro.index.vist import VistIndex
from repro.labeling.dynamic import NodeState
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree, _Internal, _Leaf
from repro.storage.pager import MemoryPager
from repro.storage.wal import WalPager
from repro.testing.generator import DocQueryGenerator
from repro.testing.invariants import (
    VersionMonitor,
    assert_invariants,
    check_bptree,
    check_index,
    check_posting_coherence,
    check_vist_documents,
    check_vist_scopes,
)


def small_corpus(seed: int = 3, count: int = 12) -> list[XmlNode]:
    return DocQueryGenerator(seed).corpus(count, 10)


def build_index(**kwargs) -> VistIndex:
    index = VistIndex(SequenceEncoder(), **kwargs)
    index.add_all(small_corpus())
    return index


def first_leaf(tree: BPlusTree) -> _Leaf:
    node = tree._node(tree._root_pid)
    while isinstance(node, _Internal):
        node = tree._node(node.children[0])
    return node


class TestHealthyIndexes:
    def test_fresh_index_all_green(self):
        index = build_index()
        index.query("//a", verify=True)  # warm the posting cache
        reports = assert_invariants(index)
        assert all(report.ok for report in reports)
        assert sum(report.checked for report in reports) > 0
        names = {report.name for report in reports}
        assert names == {
            "bptree:combined",
            "bptree:docid",
            "vist:scopes",
            "vist:documents",
            "postings:coherence",
        }

    def test_after_removals_green(self):
        index = build_index()
        for doc_id in list(index.docstore.ids())[::2]:
            index.remove(doc_id)
        assert_invariants(index)

    def test_reopened_index_green(self, tmp_path):
        db = tmp_path / "inv.db"
        index = VistIndex(SequenceEncoder(), pager=WalPager(db))
        docs = small_corpus()
        index.add_all(docs)
        index.flush()
        payloads = [index.docstore.get(d) for d in index.docstore.ids()]
        index.tree.close()
        index.docid_tree.close()
        index._pager.close()

        reopened = VistIndex(SequenceEncoder(), pager=WalPager(db))
        # the default in-memory docstore does not survive reopen; refill
        # it so the document checker has payloads to compare against
        for payload in payloads:
            reopened.docstore.add(payload)
        try:
            assert_invariants(reopened)
        finally:
            reopened.close()

    def test_underflow_borrowing_still_green(self):
        # a tiny label space forces reserve borrowing (private chains)
        index = VistIndex(SequenceEncoder(), max_label=1 << 24)
        index.add_all(small_corpus(seed=5, count=10))
        assert index.underflow_count > 0
        assert_invariants(index)


class TestBPlusTreeCorruption:
    def make_tree(self) -> BPlusTree:
        tree = BPlusTree(MemoryPager(page_size=256))
        for i in range(200):
            tree.insert(f"k{i:05d}".encode(), str(i).encode())
        assert check_bptree(tree).ok
        return tree

    def test_out_of_order_leaf_detected(self):
        tree = self.make_tree()
        leaf = first_leaf(tree)
        leaf.entries[0], leaf.entries[1] = leaf.entries[1], leaf.entries[0]
        report = check_bptree(tree)
        assert not report.ok
        assert any("out of order" in v for v in report.violations)

    def test_count_mismatch_detected(self):
        tree = self.make_tree()
        tree._count += 1
        report = check_bptree(tree)
        assert any("count mismatch" in v for v in report.violations)

    def test_broken_leaf_chain_detected(self):
        tree = self.make_tree()
        first_leaf(tree).next = 0
        report = check_bptree(tree)
        assert any("leaf chain broken" in v for v in report.violations)

    def test_separator_bound_violation_detected(self):
        tree = self.make_tree()
        leaf = first_leaf(tree)
        # a key far past every separator, smuggled into the leftmost leaf
        leaf.entries.append((b"zzzzzz", b"x"))
        report = check_bptree(tree)
        assert any("separator bound" in v for v in report.violations)

    def test_version_monitor_rejects_decrease(self):
        tree = self.make_tree()
        monitor = VersionMonitor(tree)
        tree.insert(b"zz-bump", b"v")
        monitor.observe()
        tree._structure_version -= 1
        with pytest.raises(AssertionError, match="backwards"):
            monitor.observe()


def _tamper_node(index: VistIndex, mutate) -> None:
    """Decode one non-root combined-tree entry, mutate it, write it back."""
    for key, value in index.tree.items():
        if key in (ROOT_KEY, META_MAX_DEPTH_KEY):
            continue
        _symbol, _prefix, n = decode_node_key(key)
        state = NodeState.from_bytes(n, value)
        mutate(state)
        index.tree.put(key, state.to_bytes())
        return
    raise AssertionError("index has no tamperable entries")


class TestVistCorruption:
    def test_missing_parent_detected(self):
        index = build_index()

        def orphan(state: NodeState) -> None:
            state.parent_n = 10**15  # no such node

        _tamper_node(index, orphan)
        report = check_vist_scopes(index)
        assert any("missing parent" in v for v in report.violations)

    def test_refcount_drift_detected(self):
        index = build_index()

        def bump(state: NodeState) -> None:
            state.refs += 1

        _tamper_node(index, bump)
        report = check_vist_documents(index)
        assert any("refs=" in v for v in report.violations)

    def test_stale_posting_cache_detected(self):
        index = build_index()
        index.query("//a", verify=True)
        assert index.postings is not None and index.postings._groups
        key = next(iter(index.postings._groups))
        group = index.postings._groups[key]
        assert group.entries
        group.entries.pop()
        report = check_posting_coherence(index)
        assert not report.ok


class TestCheckIndexDispatch:
    def test_reports_cover_all_layers(self):
        index = build_index(posting_cache_size=0)
        names = [report.name for report in check_index(index)]
        assert "postings:coherence" not in names  # cache disabled
        assert "vist:scopes" in names

    def test_assert_invariants_raises_with_summary(self):
        index = build_index()

        def orphan(state: NodeState) -> None:
            state.parent_n = 10**15

        _tamper_node(index, orphan)
        with pytest.raises(AssertionError, match="vist:scopes"):
            assert_invariants(index)


class TestCliCheck:
    def test_check_command_green_and_red(self, tmp_path, capsys):
        from repro.cli import main

        xml = tmp_path / "doc.xml"
        xml.write_text("<r><a>one</a><b k='2'>two</b></r>")
        db = tmp_path / "db"
        assert main(["index", str(db), str(xml)]) == 0
        assert main(["check", str(db)]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out
