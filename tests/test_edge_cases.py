"""Additional edge-case coverage across modules."""

import pytest

from repro.doc.model import XmlNode
from repro.doc.parser import parse_document, parse_fragment
from repro.doc.schema import Schema
from repro.errors import PageError, XmlParseError
from repro.index.vist import VistIndex
from repro.sequence.encoding import Item, StructureEncodedSequence
from repro.sequence.transform import SequenceEncoder
from repro.storage.wal import WalPager


class TestParserEdges:
    def test_doctype_with_internal_subset(self):
        doc = parse_document(
            "<!DOCTYPE r [ <!ELEMENT r (a)> <!ENTITY x 'y'> ]><r><a/></r>"
        )
        assert doc.root.label == "r"

    def test_nested_brackets_in_doctype(self):
        doc = parse_document("<!DOCTYPE r [ [nested] ]><r/>")
        assert doc.root.label == "r"

    def test_deeply_nested_document(self):
        text = "<a>" * 80 + "</a>" * 80
        node = parse_fragment(text)
        assert node.depth() == 80

    def test_unicode_content(self):
        node = parse_fragment("<名前 属性='値'>テキスト</名前>")
        assert node.label == "名前"
        assert node.attributes["属性"] == "値"
        assert node.text == "テキスト"

    def test_crlf_whitespace(self):
        node = parse_fragment("<a\r\n  x='1'\r\n>\r\n<b/>\r\n</a>")
        assert node.attributes == {"x": "1"}
        assert node.children[0].label == "b"

    def test_comment_with_dashes_inside_content(self):
        node = parse_fragment("<a><!-- a - b -- c --><b/></a>")
        assert [c.label for c in node.children] == ["b"]


class TestUnicodeEndToEnd:
    def test_index_and_query_unicode(self):
        index = VistIndex(SequenceEncoder())
        doc = XmlNode("книга")
        doc.element("автор", text="Пушкин")
        doc_id = index.add(doc)
        assert index.query("/книга/автор[text='Пушкин']") == [doc_id]
        assert index.query("/книга/автор[text='Гоголь']") == []

    def test_unicode_survives_persistence_roundtrip(self):
        index = VistIndex(SequenceEncoder())
        doc = XmlNode("r")
        doc.element("t", text="naïve — résumé")
        doc_id = index.add(doc)
        seq = index.load_sequence(doc_id)
        assert seq == SequenceEncoder().encode_node(doc)


class TestSchemaEdges:
    def test_dtd_with_comments_between_decls(self):
        schema = Schema.from_dtd(
            "<!ELEMENT a (b)>\n<!-- note -->\n<!ELEMENT b EMPTY>"
        )
        assert schema.require("a").child("b") is not None

    def test_sibling_order_total_over_mixed_decls(self):
        schema = Schema.from_dtd("<!ELEMENT a (x, y)>")
        keys = [
            schema.sibling_position("a", label) for label in ["y", "x", "zzz", "aaa"]
        ]
        assert keys[1] < keys[0] < keys[3] < keys[2]  # x < y < aaa < zzz


class TestWalEdges:
    def test_rollback_after_allocate_recycles_page(self, tmp_path):
        pager = WalPager(tmp_path / "w.db", page_size=256)
        pager.commit()
        before = pager.page_count
        pager.allocate()
        pager.rollback()
        assert pager.page_count == before
        pid = pager.allocate()  # the rolled-back id is reissued
        assert pid == before + 1
        pager.close()

    def test_read_out_of_range(self, tmp_path):
        pager = WalPager(tmp_path / "w.db", page_size=256)
        with pytest.raises(PageError):
            pager.read(99)
        with pytest.raises(PageError):
            pager.write(99, b"x")
        pager.close()

    def test_empty_commit_is_noop(self, tmp_path):
        import os

        pager = WalPager(tmp_path / "w.db", page_size=256)
        pager.commit()
        pager.commit()
        assert not os.path.exists(pager.journal_path)
        pager.close()


class TestSequenceEdges:
    def test_single_node_document(self):
        index = VistIndex(SequenceEncoder())
        doc_id = index.add(XmlNode("lonely"))
        assert index.query("/lonely") == [doc_id]
        assert index.load_sequence(doc_id) == StructureEncodedSequence(
            [Item("lonely", ())]
        )

    def test_identical_documents_distinct_ids(self):
        index = VistIndex(SequenceEncoder())
        doc = XmlNode("r")
        doc.element("a")
        ids = [index.add(doc) for _ in range(5)]
        assert len(set(ids)) == 5
        assert index.query("/r/a") == ids

    def test_very_wide_document(self):
        index = VistIndex(SequenceEncoder())
        wide = XmlNode("r")
        for i in range(300):
            wide.element(f"c{i:03d}")
        doc_id = index.add(wide)
        assert index.query("/r/c123") == [doc_id]
        assert index.query("/r/c299") == [doc_id]

    def test_many_distinct_values_under_one_path(self):
        """Stress the value λ-chain: hundreds of distinct values share one
        virtual-trie parent."""
        index = VistIndex(SequenceEncoder())
        ids = []
        for i in range(200):
            doc = XmlNode("r")
            doc.element("v", text=f"value-{i}")
            ids.append(index.add(doc))
        assert index.query("/r/v[text='value-137']") == [ids[137]]
        assert index.query("/r/v") == ids
