"""Integration tests: every shipped example must run end to end."""

import io
import sys
from contextlib import redirect_stdout

import pytest

sys.path.insert(0, "examples")


def run_example(module_name: str) -> str:
    module = __import__(module_name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart")
        assert "indexed 4 purchase records" in out
        assert "Q2 now ->" in out
        assert "removed doc" in out

    def test_bibliography_search(self):
        out = run_example("bibliography_search")
        assert "built a 400-record bibliography index" in out
        assert "Q5 authors of the Maier book" in out
        assert "stored sequence of doc 0" in out

    def test_auction_site(self):
        out = run_example("auction_site")
        assert "indexed 600 auction-site substructure records" in out
        assert "soundness caveat demo" in out
        assert "verified ->" in out

    def test_index_comparison(self):
        out = run_example("index_comparison")
        assert "ViST used zero joins" in out
        # every method agreed on every query (asserted inside the example)
        assert "single path" in out

    def test_library_catalog(self):
        out = run_example("library_catalog")
        assert "catalogued 6 books" in out
        assert "Transaction Processing" in out
        assert "<author>Maier</author>" in out
