"""Unit + property tests for the B+Tree (the Berkeley DB substitute)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateEntryError, KeyTooLargeError, StorageError
from repro.storage.bptree import BPlusTree
from repro.storage.cache import BufferPool
from repro.storage.pager import FilePager, MemoryPager


def make_tree(page_size=256):
    return BPlusTree(MemoryPager(page_size=page_size))


def key(i: int) -> bytes:
    return f"k{i:08d}".encode()


class TestBasicOps:
    def test_empty_tree(self):
        t = make_tree()
        assert len(t) == 0
        assert t.is_empty()
        assert t.get(b"missing") is None
        assert t.first() is None
        assert t.last() is None
        assert list(t.items()) == []

    def test_insert_get(self):
        t = make_tree()
        t.insert(b"a", b"1")
        assert t.get(b"a") == b"1"
        assert t.contains(b"a")
        assert not t.contains(b"b")
        assert len(t) == 1

    def test_insert_many_and_order(self):
        t = make_tree()
        n = 500
        order = list(range(n))
        random.Random(7).shuffle(order)
        for i in order:
            t.insert(key(i), str(i).encode())
        assert len(t) == n
        items = list(t.items())
        assert [k for k, _ in items] == sorted(k for k, _ in items)
        assert len(items) == n
        for i in range(n):
            assert t.get(key(i)) == str(i).encode()

    def test_duplicate_keys_allowed(self):
        t = make_tree()
        t.insert(b"dup", b"v1")
        t.insert(b"dup", b"v2")
        t.insert(b"dup", b"v0")
        assert list(t.values(b"dup")) == [b"v0", b"v1", b"v2"]

    def test_exact_duplicate_pair_rejected(self):
        t = make_tree()
        t.insert(b"k", b"v")
        with pytest.raises(DuplicateEntryError):
            t.insert(b"k", b"v")

    def test_exact_duplicate_pair_opt_in(self):
        t = make_tree()
        t.insert(b"k", b"v")
        t.insert(b"k", b"v", allow_exact_dup=True)
        assert len(list(t.values(b"k"))) == 2

    def test_put_is_upsert(self):
        t = make_tree()
        t.insert(b"k", b"old1")
        t.insert(b"k", b"old2")
        t.put(b"k", b"new")
        assert list(t.values(b"k")) == [b"new"]
        assert len(t) == 1

    def test_key_too_large(self):
        t = make_tree(page_size=256)
        with pytest.raises(KeyTooLargeError):
            t.insert(b"x" * 300, b"")

    def test_first_last(self):
        t = make_tree()
        for i in [5, 3, 9, 1]:
            t.insert(key(i))
        assert t.first()[0] == key(1)
        assert t.last()[0] == key(9)

    def test_closed_tree_rejects_ops(self):
        t = make_tree()
        t.close()
        with pytest.raises(StorageError):
            t.insert(b"a")


class TestRangeScans:
    @pytest.fixture
    def tree(self):
        t = make_tree()
        for i in range(0, 100, 2):  # even keys 0..98
            t.insert(key(i), str(i).encode())
        return t

    def test_full_scan(self, tree):
        assert len(list(tree.range())) == 50

    def test_half_open(self, tree):
        got = [k for k, _ in tree.range(key(10), key(20))]
        assert got == [key(i) for i in range(10, 20, 2)]

    def test_inclusive_hi(self, tree):
        got = [k for k, _ in tree.range(key(10), key(20), include_hi=True)]
        assert got[-1] == key(20)

    def test_exclusive_lo(self, tree):
        got = [k for k, _ in tree.range(key(10), key(20), include_lo=False)]
        assert got[0] == key(12)

    def test_lo_between_keys(self, tree):
        got = [k for k, _ in tree.range(key(11), key(15), include_hi=True)]
        assert got == [key(12), key(14)]

    def test_empty_range(self, tree):
        assert list(tree.range(key(11), key(12))) == []

    def test_open_hi(self, tree):
        got = list(tree.range(key(90), None))
        assert [k for k, _ in got] == [key(i) for i in range(90, 100, 2)]

    def test_range_spanning_many_leaves(self):
        t = make_tree(page_size=128)
        for i in range(300):
            t.insert(key(i))
        got = [k for k, _ in t.range(key(50), key(250))]
        assert got == [key(i) for i in range(50, 250)]


class TestDeletion:
    def test_delete_single_pair(self):
        t = make_tree()
        t.insert(b"k", b"v1")
        t.insert(b"k", b"v2")
        assert t.delete(b"k", b"v1") == 1
        assert list(t.values(b"k")) == [b"v2"]
        assert len(t) == 1

    def test_delete_all_for_key(self):
        t = make_tree()
        for v in [b"a", b"b", b"c"]:
            t.insert(b"k", v)
        t.insert(b"other", b"x")
        assert t.delete(b"k") == 3
        assert t.get(b"k") is None
        assert t.get(b"other") == b"x"

    def test_delete_missing(self):
        t = make_tree()
        t.insert(b"k", b"v")
        assert t.delete(b"nope") == 0
        assert t.delete(b"k", b"wrong-value") == 0
        assert len(t) == 1

    def test_delete_everything_then_reuse(self):
        t = make_tree(page_size=128)
        n = 400
        for i in range(n):
            t.insert(key(i), b"v")
        for i in range(n):
            assert t.delete(key(i)) == 1
        assert len(t) == 0
        assert list(t.items()) == []
        t.insert(b"fresh", b"v")
        assert t.get(b"fresh") == b"v"

    def test_delete_random_half(self):
        t = make_tree(page_size=128)
        n = 500
        for i in range(n):
            t.insert(key(i), b"v")
        rng = random.Random(3)
        victims = rng.sample(range(n), n // 2)
        for i in victims:
            assert t.delete(key(i)) == 1
        survivors = sorted(set(range(n)) - set(victims))
        assert [k for k, _ in t.items()] == [key(i) for i in survivors]

    def test_page_reclamation(self):
        pager = MemoryPager(page_size=128)
        t = BPlusTree(pager)
        for i in range(500):
            t.insert(key(i), b"v")
        peak = pager.live_page_count
        for i in range(500):
            t.delete(key(i))
        assert pager.live_page_count < peak / 4


class TestPersistence:
    def test_flush_and_reopen(self, tmp_path):
        pager = FilePager(tmp_path / "t.db", page_size=256)
        t = BPlusTree(pager)
        for i in range(200):
            t.insert(key(i), str(i).encode())
        t.close()
        pager.close()

        pager2 = FilePager(tmp_path / "t.db")
        t2 = BPlusTree(pager2)
        assert len(t2) == 200
        for i in range(200):
            assert t2.get(key(i)) == str(i).encode()
        pager2.close()

    def test_two_trees_one_pager(self, tmp_path):
        pager = FilePager(tmp_path / "t.db", page_size=256)
        a = BPlusTree(pager, slot=0)
        b = BPlusTree(pager, slot=1)
        for i in range(100):
            a.insert(key(i), b"A")
            b.insert(key(i), b"B")
        a.close()
        b.close()
        pager.close()

        pager2 = FilePager(tmp_path / "t.db")
        a2 = BPlusTree(pager2, slot=0)
        b2 = BPlusTree(pager2, slot=1)
        assert a2.get(key(5)) == b"A"
        assert b2.get(key(5)) == b"B"
        pager2.close()

    def test_through_buffer_pool(self, tmp_path):
        pool = BufferPool(FilePager(tmp_path / "t.db", page_size=256), capacity=8)
        t = BPlusTree(pool)
        for i in range(300):
            t.insert(key(i), b"v")
        t.checkpoint(clear_cache=True)
        for i in range(300):
            assert t.get(key(i)) == b"v"
        t.close()
        pool.close()

    def test_checkpoint_clear_cache_preserves_data(self):
        t = make_tree()
        for i in range(100):
            t.insert(key(i), b"v")
        t.checkpoint(clear_cache=True)
        assert [k for k, _ in t.items()] == [key(i) for i in range(100)]


class TestStats:
    def test_stats_shape(self):
        t = make_tree(page_size=128)
        for i in range(300):
            t.insert(key(i), b"v")
        s = t.stats()
        assert s.entries == 300
        assert s.height >= 2
        assert s.leaf_pages > 1
        assert s.internal_pages >= 1
        assert s.total_pages == s.leaf_pages + s.internal_pages
        assert s.total_bytes == s.total_pages * 128
        assert 0 < s.used_bytes <= s.total_bytes

    def test_stats_empty(self):
        s = make_tree().stats()
        assert s.entries == 0
        assert s.height == 1
        assert s.leaf_pages == 1
        assert s.internal_pages == 0


class TestDescentCache:
    """Root-to-leaf descent reuse: the interior path of the last _seek."""

    def filled(self, n=600, page_size=128):
        t = make_tree(page_size=page_size)
        for i in range(n):
            t.insert(key(i), b"v")
        return t

    def test_sequential_lookups_hit(self):
        t = self.filled()
        for i in range(600):
            assert t.get(key(i)) == b"v"
        assert t.descent_hits > 0
        # sequential keys share leaves, so most descents are cache hits
        assert t.descent_hit_rate > 0.5

    def test_stats_expose_counters(self):
        t = self.filled()
        for i in range(50):
            t.contains(key(i))
        s = t.stats()
        assert s.descent_hits == t.descent_hits
        assert s.descent_misses == t.descent_misses
        assert s.descent_hits + s.descent_misses > 0

    def test_structural_change_invalidates(self):
        t = self.filled()
        t.get(key(10))
        t.get(key(11))  # warm: same leaf
        hits = t.descent_hits
        # enough inserts around the cached leaf to force a split
        for j in range(40):
            t.insert(key(10) + f"-{j:03d}".encode(), b"v")
        assert t.get(key(10)) == b"v"  # must not land on a stale leaf
        for i in range(600):
            assert t.get(key(i)) == b"v"
        assert t.descent_hits >= hits

    def test_correct_across_random_mutations(self):
        t = make_tree(page_size=128)
        model = {}
        rng = random.Random(11)
        for step in range(1500):
            i = rng.randrange(200)
            if i in model and rng.random() < 0.4:
                assert t.delete(key(i)) == 1
                del model[i]
            elif i not in model:
                t.insert(key(i), str(step).encode())
                model[i] = str(step).encode()
            # interleave point lookups that exercise the cached descent
            probe = rng.randrange(200)
            assert t.get(key(probe)) == model.get(probe)
            assert t.contains(key(probe)) == (probe in model)
        assert t.descent_hits > 0

    def test_single_leaf_tree_never_caches(self):
        t = make_tree()
        t.insert(b"a", b"1")
        assert t.get(b"a") == b"1"
        assert t.descent_hits == 0 and t.descent_misses == 0

    def test_checkpoint_clear_cache_is_safe(self):
        t = self.filled()
        t.get(key(5))
        t.checkpoint(clear_cache=True)
        # cached descent stores pids; pages must re-decode after the drop
        assert t.get(key(5)) == b"v"
        assert t.get(key(6)) == b"v"

    def test_interleaved_key_groups_hit_lru(self):
        """Regression: the combined-tree access pattern must not thrash.

        Algorithm 2 interleaves lookups across a handful of distant
        D-Ancestor key groups per frontier level.  The old single-slot
        cache evicted on every alternation (8% hit rate on dblp,
        BENCH_table4.json); the LRU must keep all groups resident.
        """
        t = self.filled(n=2000, page_size=128)
        # four key groups spread across distant leaves, round-robin probes
        groups = [0, 500, 1000, 1500]
        for round_ in range(50):
            for base in groups:
                assert t.get(key(base + round_)) == b"v"
        # warmup misses once per group+round-edge at worst; alternation
        # itself must no longer evict — demand a decisively high rate
        assert t.descent_hit_rate > 0.5, (
            t.descent_hits,
            t.descent_misses,
        )

    def test_lru_capacity_is_bounded(self):
        t = self.filled(n=2000, page_size=128)
        for i in range(0, 2000, 7):
            t.get(key(i))
        from repro.storage.bptree import _DESCENT_SLOTS

        assert len(t._descents) <= _DESCENT_SLOTS


class TestFirstHitSeek:
    """get/contains/delete(key) resolve via one _seek, not a full key scan."""

    def test_get_returns_first_duplicate(self):
        t = make_tree()
        t.insert(b"k", b"b")
        t.insert(b"k", b"a")
        t.insert(b"k", b"c")
        assert t.get(b"k") == b"a"  # smallest value: leaf order, not insert order

    def test_contains_on_boundary_keys(self):
        t = make_tree(page_size=128)
        for i in range(300):
            t.insert(key(i), b"v")
        assert all(t.contains(key(i)) for i in range(300))
        assert not t.contains(b"k-1")
        assert not t.contains(key(300))

    def test_delete_key_spanning_leaves(self):
        t = make_tree(page_size=128)
        for i in range(50):
            t.insert(b"dup", f"{i:04d}".encode())
        t.insert(b"aaa", b"x")
        t.insert(b"zzz", b"y")
        assert t.delete(b"dup") == 50
        assert t.get(b"dup") is None
        assert [k for k, _ in t.items()] == [b"aaa", b"zzz"]


# ---------------------------------------------------------------------------
# model-based property tests against a sorted reference


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete_pair", "delete_key"]),
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=3),
        ),
        max_size=200,
    )
)
def test_model_based_ops(ops):
    """Random insert/delete sequences must match a sorted-list reference."""
    tree = BPlusTree(MemoryPager(page_size=128))
    model: list[tuple[bytes, bytes]] = []
    for op, ki, vi in ops:
        k = f"key-{ki:04d}".encode()
        v = f"val-{vi}".encode()
        if op == "insert":
            if (k, v) in model:
                with pytest.raises(DuplicateEntryError):
                    tree.insert(k, v)
            else:
                tree.insert(k, v)
                model.append((k, v))
        elif op == "delete_pair":
            removed = tree.delete(k, v)
            assert removed == (1 if (k, v) in model else 0)
            if (k, v) in model:
                model.remove((k, v))
        else:
            expected = sum(1 for mk, _ in model if mk == k)
            assert tree.delete(k) == expected
            model = [(mk, mv) for mk, mv in model if mk != k]
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.lists(st.binary(min_size=1, max_size=12), min_size=1, max_size=120, unique=True),
    bounds=st.tuples(st.binary(max_size=12), st.binary(max_size=12)),
)
def test_range_matches_reference(keys, bounds):
    tree = BPlusTree(MemoryPager(page_size=128))
    for k in keys:
        tree.insert(k, b"")
    lo, hi = min(bounds), max(bounds)
    got = [k for k, _ in tree.range(lo, hi)]
    expected = sorted(k for k in keys if lo <= k < hi)
    assert got == expected
    got_inc = [k for k, _ in tree.range(lo, hi, include_lo=False, include_hi=True)]
    expected_inc = sorted(k for k in keys if lo < k <= hi)
    assert got_inc == expected_inc
