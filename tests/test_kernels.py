"""The packed-kernel seam: codecs, toggles, and packed/plain parity.

Covers the three kernels of :mod:`repro.kernels` (the ``REPRO_PACKED``
toggle, the int64 column packer, the column byte codec, the zero-copy
leaf offset table) plus end-to-end parity: a ViST index queried with the
packed columnar frontier must produce byte-identical answers *and*
identical MatchStats to the plain tuple frontier.
"""

import struct
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.errors import CodecError
from repro.index.matching import SequenceMatcher
from repro.index.postings import PostingGroup
from repro.index.vist import VistIndex
from repro.labeling.scope import Scope
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import _LEAF_HEADER
from repro.testing.generator import DocQueryGenerator

# encode_int magnitudes cap at 255 bytes -> |value| < 2**2040
_MAX_MAGNITUDE = (1 << 2040) - 1
_INT64_MAX = (1 << 63) - 1


class TestPackedEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_PACKED", raising=False)
        assert kernels.packed_enabled()

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKED", "0")
        assert not kernels.packed_enabled()

    def test_other_values_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKED", "1")
        assert kernels.packed_enabled()
        monkeypatch.setenv("REPRO_PACKED", "yes")
        assert kernels.packed_enabled()


class TestPackInts:
    def test_int64_values_pack_to_array(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKED", "1")
        col = kernels.pack_ints([3, 1, 2, _INT64_MAX, -(1 << 63)])
        assert isinstance(col, array)
        assert col.typecode == "q"
        assert list(col) == [3, 1, 2, _INT64_MAX, -(1 << 63)]

    def test_oversized_values_fall_back_to_list(self):
        values = [1, 2, 1 << 256]  # ViST labels routinely exceed int64
        col = kernels.pack_ints(values)
        assert isinstance(col, list)
        assert col == values  # exact Python ints, no truncation

    def test_disabled_returns_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_PACKED", "0")
        col = kernels.pack_ints([1, 2, 3])
        assert isinstance(col, list)


class TestColumnCodec:
    def test_known_layout_fixed64(self):
        data = kernels.encode_columns([[1, 2]])
        assert kernels.decode_columns(data) == [[1, 2]]
        # count=2 then the fixed64 mode byte then two little-endian words
        assert struct.pack("<qq", 1, 2) in data

    def test_wide_ints_use_varint_mode(self):
        values = [0, -(1 << 200), _MAX_MAGNITUDE]
        data = kernels.encode_columns([values])
        assert kernels.decode_columns(data) == [values]

    def test_empty_cases(self):
        assert kernels.decode_columns(kernels.encode_columns([])) == []
        assert kernels.decode_columns(kernels.encode_columns([[]])) == [[]]
        assert kernels.decode_columns(kernels.encode_columns([[], [5]])) == [[], [5]]

    def test_canonical_for_equal_inputs(self):
        # list vs array inputs of the same values: identical bytes — the
        # property the oracle's byte-fingerprint comparison rests on
        a = kernels.encode_columns([[10, 20, 30]])
        b = kernels.encode_columns([array("q", [10, 20, 30])])
        assert a == b

    def test_truncation_raises(self):
        data = kernels.encode_columns([[1, 2, 3]])
        with pytest.raises(CodecError):
            kernels.decode_columns(data[:-1])

    def test_trailing_bytes_raise(self):
        data = kernels.encode_columns([[1]])
        with pytest.raises(CodecError):
            kernels.decode_columns(data + b"\x00")

    def test_unknown_mode_raises(self):
        data = bytearray(kernels.encode_columns([[1]]))
        # the mode byte follows the ncols uint and the count uint
        data[2] = 0x7F
        with pytest.raises(CodecError):
            kernels.decode_columns(bytes(data))

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=-_MAX_MAGNITUDE, max_value=_MAX_MAGNITUDE),
                max_size=20,
            ),
            max_size=6,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_round_trip_structural_identity(self, columns):
        assert kernels.decode_columns(kernels.encode_columns(columns)) == columns

    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=-(1 << 63), max_value=_INT64_MAX),
                st.integers(min_value=-_MAX_MAGNITUDE, max_value=_MAX_MAGNITUDE),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_mixed_width_column(self, values):
        assert kernels.decode_columns(kernels.encode_columns([values])) == [values]


class TestLeafCellOffsets:
    @staticmethod
    def _leaf_page(cells):
        out = bytearray(struct.pack("<BHQ", 0x01, len(cells), 0))
        for k, v in cells:
            out += struct.pack("<HH", len(k), len(v)) + k + v
        return bytes(out)

    def test_offsets_reconstruct_cells(self):
        cells = [(b"alpha", b"1"), (b"beta", b""), (b"", b"value-2")]
        raw = self._leaf_page(cells)
        offsets, end = kernels.leaf_cell_offsets(raw, len(cells), _LEAF_HEADER)
        assert end == len(raw)
        got = []
        for j in range(0, len(offsets), 3):
            base, klen, vlen = offsets[j], offsets[j + 1], offsets[j + 2]
            got.append((raw[base : base + klen], raw[base + klen : base + klen + vlen]))
        assert got == cells

    def test_empty_page(self):
        raw = self._leaf_page([])
        offsets, end = kernels.leaf_cell_offsets(raw, 0, _LEAF_HEADER)
        assert len(offsets) == 0
        assert end == _LEAF_HEADER

    @given(
        st.lists(
            st.tuples(
                st.binary(max_size=16),
                st.binary(max_size=16),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_end_equals_used_bytes(self, cells):
        raw = self._leaf_page(cells)
        offsets, end = kernels.leaf_cell_offsets(raw, len(cells), _LEAF_HEADER)
        assert end == len(raw)
        assert len(offsets) == 3 * len(cells)


class TestPostingGroupColumns:
    def test_columns_parallel_and_sorted(self):
        postings = [
            (("a", "b"), Scope(30, 5)),
            (("a",), Scope(10, 2)),
            (("c",), Scope(20, 0)),
        ]
        group = PostingGroup(postings)
        assert list(group.ns) == [10, 20, 30]
        assert list(group.ends) == [12, 20, 35]
        assert group.prefixes == (("a",), ("c",), ("a", "b"))
        assert group.entries == [
            (("a",), Scope(10, 2)),
            (("c",), Scope(20, 0)),
            (("a", "b"), Scope(30, 5)),
        ]

    def test_select_span_matches_select(self):
        group = PostingGroup([((), Scope(n, 0)) for n in [10, 20, 30, 40]])
        lo, hi = group.select_span(10, 30)
        assert [group.ns[i] for i in range(lo, hi)] == [20, 30]
        assert [s.n for _, s in group.select(Scope(10, 20))] == [20, 30]

    def test_prefixes_interned_across_groups(self):
        a = PostingGroup([(("x", "y"), Scope(1, 0))])
        b = PostingGroup([(("x", "y"), Scope(2, 0))])
        assert a.prefixes[0] is b.prefixes[0]

    def test_big_labels_keep_list_columns(self):
        big = 1 << 200
        group = PostingGroup([((), Scope(big, 3))])
        assert isinstance(group.ns, list)
        assert group.select(Scope(big - 1, 2)) == [((), Scope(big, 3))]


class TestPackedPlainParity:
    """Packed frontier vs plain tuple frontier: answers and stats equal."""

    @pytest.fixture(scope="class")
    def corpus_index(self):
        generator = DocQueryGenerator(1234)
        corpus = generator.corpus(8, 14)
        index = VistIndex(SequenceEncoder())
        index.add_all(corpus)
        queries = [generator.query(corpus) for _ in range(12)]
        return index, queries

    def test_answers_and_stats_identical(self, corpus_index):
        index, queries = corpus_index
        packed = SequenceMatcher(index, packed=True)
        plain = SequenceMatcher(index, packed=False)
        compared = 0
        for query in queries:
            for qseq in index.translator.translate(query):
                a = packed.final_scopes(qseq)
                stats_a = packed.stats.snapshot()
                b = plain.final_scopes(qseq)
                stats_b = plain.stats.snapshot()
                assert a == b
                # cache hit/miss deltas differ run-to-run (shared posting
                # cache warms up); every traversal counter must match
                for field in (
                    "range_queries",
                    "candidates",
                    "search_states",
                    "final_nodes",
                    "batched_states",
                ):
                    assert stats_a[field] == stats_b[field], (field, qseq)
                # byte-identical under the canonical column encoding
                assert kernels.encode_columns(
                    [sorted(s.n for s in a)]
                ) == kernels.encode_columns([sorted(s.n for s in b)])
                compared += 1
        assert compared >= 12

    def test_match_results_identical(self, corpus_index):
        index, queries = corpus_index
        packed = SequenceMatcher(index, packed=True)
        plain = SequenceMatcher(index, packed=False)
        for query in queries[:6]:
            for qseq in index.translator.translate(query):
                assert packed.match(qseq) == plain.match(qseq)
