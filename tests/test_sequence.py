"""Tests for structure-encoded sequences: the paper's Figure 4 example,
item key ordering, payload codecs, and transform properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.doc.model import XmlNode
from repro.doc.schema import ChildSpec, Occurs, Schema
from repro.errors import CodecError
from repro.index.verification import rebuild_tree
from repro.sequence.encoding import (
    Item,
    StructureEncodedSequence,
    item_key,
    item_key_prefix,
)
from repro.sequence.transform import SequenceEncoder
from repro.sequence.vocabulary import ValueHasher, fnv1a_64


# -- Hypothesis strategy: real recursive XML trees ---------------------------

def _make_node(label, text, attributes, children):
    node = XmlNode(label, attributes=dict(attributes), text=text)
    for child in children:
        node.add(child)
    return node


_labels = st.sampled_from(["a", "b", "c", "d"])
_texts = st.one_of(st.none(), st.sampled_from(["u", "v", "7", "part#1", ""]))
_attrs = st.dictionaries(
    st.sampled_from(["id", "k"]), st.sampled_from(["x", "9"]), max_size=2
)

xml_trees = st.recursive(
    st.builds(_make_node, _labels, _texts, _attrs, st.just([])),
    lambda kids: st.builds(
        _make_node, _labels, _texts, _attrs, st.lists(kids, min_size=1, max_size=3)
    ),
    max_leaves=12,
)


def figure3_tree() -> XmlNode:
    """The single purchase record of paper Figure 3 (one-letter labels)."""
    p = XmlNode("P")
    s = p.element("S")
    s.element("N", text="dell")
    i1 = s.element("I")
    i1.element("M", text="ibm")
    i1.element("N", text="part#1")
    i2 = i1.element("I")
    i2.element("M", text="part#2")
    s.element("I").element("N", text="intel")
    s.element("L", text="boston")
    b = p.element("B")
    b.element("L", text="newyork")
    b.element("N", text="panasia")
    return p


def figure3_schema() -> Schema:
    """Sibling order matching the drawing in paper Figure 3."""
    schema = Schema("P")
    schema.element("P", [ChildSpec("S"), ChildSpec("B")])
    schema.element("S", [ChildSpec("N"), ChildSpec("I", Occurs.MANY), ChildSpec("L")])
    schema.element("B", [ChildSpec("L"), ChildSpec("N")])
    schema.element("I", [ChildSpec("M"), ChildSpec("N"), ChildSpec("I", Occurs.MANY)])
    return schema


class TestValueHasher:
    def test_deterministic(self):
        h = ValueHasher()
        assert h("boston") == h("boston")
        assert h("boston") == h(" boston ")  # whitespace-insensitive

    def test_distinct_values_differ(self):
        h = ValueHasher()
        assert h("boston") != h("newyork")

    def test_buckets(self):
        h = ValueHasher(buckets=10)
        assert 0 <= h("anything") < 10

    def test_bucket_validation(self):
        with pytest.raises(CodecError):
            ValueHasher(buckets=0)

    def test_fnv_known_vector(self):
        # FNV-1a 64 of empty input is the offset basis.
        assert fnv1a_64(b"") == 0xCBF29CE484222325


class TestFigure4:
    """The headline example: Figure 3's record encodes to Figure 4's D."""

    def test_exact_sequence(self):
        encoder = SequenceEncoder(schema=figure3_schema())
        h = encoder.hasher
        got = encoder.encode_node(figure3_tree())
        expected = [
            ("P", ()),
            ("S", ("P",)),
            ("N", ("P", "S")),
            (h("dell"), ("P", "S", "N")),
            ("I", ("P", "S")),
            ("M", ("P", "S", "I")),
            (h("ibm"), ("P", "S", "I", "M")),
            ("N", ("P", "S", "I")),
            (h("part#1"), ("P", "S", "I", "N")),
            ("I", ("P", "S", "I")),
            ("M", ("P", "S", "I", "I")),
            (h("part#2"), ("P", "S", "I", "I", "M")),
            ("I", ("P", "S")),
            ("N", ("P", "S", "I")),
            (h("intel"), ("P", "S", "I", "N")),
            ("L", ("P", "S")),
            (h("boston"), ("P", "S", "L")),
            ("B", ("P",)),
            ("L", ("P", "B")),
            (h("newyork"), ("P", "B", "L")),
            ("N", ("P", "B")),
            (h("panasia"), ("P", "B", "N")),
        ]
        assert [(i.symbol, i.prefix) for i in got] == expected

    def test_lexicographic_fallback_order(self):
        # Without a schema, B sorts before S under P.
        encoder = SequenceEncoder()
        got = encoder.encode_node(figure3_tree())
        labels = [i.symbol for i in got if not i.is_value]
        assert labels[0] == "P"
        assert labels[1] == "B"  # Buyer precedes Seller lexicographically

    def test_value_follows_its_node(self):
        encoder = SequenceEncoder(schema=figure3_schema())
        got = list(encoder.encode_node(figure3_tree()))
        for i, item in enumerate(got):
            if item.is_value:
                prev = got[i - 1]
                # a value's prefix ends with the label it belongs to
                assert item.prefix[-1] == prev.symbol or got[i - 1].is_value


class TestItemProperties:
    def test_depth_and_is_value(self):
        item = Item("S", ("P",))
        assert item.depth == 1
        assert not item.is_value
        assert Item(42, ("P", "S")).is_value

    def test_items_hashable_and_frozen(self):
        a = Item("S", ("P",))
        b = Item("S", ("P",))
        assert a == b
        assert len({a, b}) == 1
        with pytest.raises(Exception):
            a.symbol = "X"


class TestItemKeys:
    def test_order_symbol_then_length_then_content(self):
        """Section 3.3: keys ordered by symbol, then prefix length, then content."""
        keys = [
            item_key(Item("L", ("P",))),
            item_key(Item("L", ("P", "B"))),
            item_key(Item("L", ("P", "S"))),
            item_key(Item("L", ("P", "B", "X"))),
        ]
        assert keys == sorted(keys)
        # length dominates content: ("P","B","X") sorts after ("P","S")
        assert item_key(Item("L", ("P", "S"))) < item_key(Item("L", ("P", "B", "X")))

    def test_wildcard_range_covers_one_open_label(self):
        """(L, P*) == all keys with symbol L, prefix length 2, starting P."""
        lo = item_key_prefix("L", 2, ("P",))
        ps = item_key(Item("L", ("P", "S")))
        pb = item_key(Item("L", ("P", "B")))
        other_len = item_key(Item("L", ("P",)))
        assert ps.startswith(lo[: len(lo) - 0]) or lo < ps
        assert lo <= pb and lo <= ps
        assert not other_len.startswith(item_key_prefix("L", 2))
        assert pb.startswith(item_key_prefix("L", 2))
        assert ps.startswith(item_key_prefix("L", 2, ("P",)))

    def test_value_symbols_use_int_slot(self):
        k1 = item_key(Item(123, ("P", "S")))
        k2 = item_key(Item(124, ("P", "S")))
        assert k1 < k2


class TestSequenceCodec:
    def test_roundtrip_figure4(self):
        encoder = SequenceEncoder(schema=figure3_schema())
        seq = encoder.encode_node(figure3_tree())
        assert StructureEncodedSequence.from_bytes(seq.to_bytes()) == seq

    def test_empty_roundtrip(self):
        seq = StructureEncodedSequence([])
        assert StructureEncodedSequence.from_bytes(seq.to_bytes()) == seq

    def test_rejects_trailing_garbage(self):
        seq = StructureEncodedSequence([Item("a", ())])
        with pytest.raises(CodecError):
            StructureEncodedSequence.from_bytes(seq.to_bytes() + b"x")

    def test_rejects_bad_depth(self):
        # depth 5 with an empty stack is not a valid preorder
        bad = b"\x01" + b"\x00" + b"a\x00\x00" + b"\x01\x05"
        with pytest.raises(CodecError):
            StructureEncodedSequence.from_bytes(bad)

    def test_immutability(self):
        seq = StructureEncodedSequence([Item("a", ())])
        with pytest.raises(AttributeError):
            seq.items = ()

    @given(xml_trees)
    def test_property_roundtrip_random_trees(self, tree):
        """Random trees (text + attributes) encode and re-decode identically."""
        seq = SequenceEncoder().encode_node(tree)
        assert StructureEncodedSequence.from_bytes(seq.to_bytes()) == seq

    @given(xml_trees)
    def test_property_to_bytes_deterministic(self, tree):
        """Serialisation is a pure function of the sequence."""
        seq = SequenceEncoder().encode_node(tree)
        assert seq.to_bytes() == seq.to_bytes()
        assert seq.to_bytes() == StructureEncodedSequence.from_bytes(
            seq.to_bytes()
        ).to_bytes()


def _canonical_expanded(node: XmlNode, encoder: SequenceEncoder) -> tuple:
    """The expanded tree in the encoder's sibling order, values hashed."""
    if node.is_value:
        return ("value", encoder.hasher(node.value))
    ordered = sorted(enumerate(node.children), key=encoder.sibling_sort_key(node.label))
    return (
        "elem",
        node.label,
        tuple(_canonical_expanded(child, encoder) for _, child in ordered),
    )


def _canonical_rebuilt(node) -> tuple:
    """A :class:`SequenceTreeNode` subtree in its stored (sequence) order."""
    if node.is_value:
        return ("value", node.symbol)
    return (
        "elem",
        node.symbol,
        tuple(_canonical_rebuilt(child) for child in node.children),
    )


class TestTransformInvariants:
    @given(xml_trees)
    def test_preorder_prefix_invariant(self, tree):
        """Every item's prefix equals the label path of its ancestors."""
        seq = SequenceEncoder().encode_node(tree)
        stack: list[str] = []
        for item in seq:
            assert len(item.prefix) <= len(stack) or item.prefix == tuple(stack)
            del stack[len(item.prefix) :]
            assert item.prefix == tuple(stack)
            if not item.is_value:
                stack.append(item.symbol)

    @given(xml_trees)
    def test_full_pipeline_rebuilds_expanded_tree(self, tree):
        """doc → sequence → bytes → sequence → tree is lossless.

        The rebuilt tree must be label- and structure-identical to the
        expanded source tree (canonicalised to the encoder's sibling
        order; value leaves compare by hash, which is all the sequence
        stores).
        """
        encoder = SequenceEncoder()
        decoded = StructureEncodedSequence.from_bytes(
            encoder.encode_node(tree).to_bytes()
        )
        super_root = rebuild_tree(decoded)
        assert len(super_root.children) == 1
        assert _canonical_rebuilt(super_root.children[0]) == _canonical_expanded(
            tree.expanded(), encoder
        )

    @given(xml_trees)
    def test_sequence_length_equals_expanded_size(self, tree):
        seq = SequenceEncoder().encode_node(tree)
        assert len(seq) == tree.expanded().size()
