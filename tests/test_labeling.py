"""Tests for scopes, follow sets and the dynamic allocators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.doc.schema import ChildSpec, Occurs, Schema
from repro.doc.stats import CorpusStats
from repro.errors import LabelingError
from repro.labeling.clues import VALUE, FollowSets
from repro.labeling.dynamic import (
    DEFAULT_MAX,
    Chain,
    ClueAllocator,
    LambdaAllocator,
    NodeState,
)
from repro.labeling.scope import Scope
from repro.sequence.encoding import Item


def purchase_schema() -> Schema:
    schema = Schema("P")
    schema.element("P", [ChildSpec("S"), ChildSpec("B")])
    schema.element("S", [ChildSpec("N"), ChildSpec("I", Occurs.MANY), ChildSpec("L")])
    schema.element("B", [ChildSpec("L"), ChildSpec("N")])
    schema.element("I", [ChildSpec("M"), ChildSpec("N"), ChildSpec("I", Occurs.MANY)])
    schema.element("N", has_text=True, value_cardinality=100)
    schema.element("L", has_text=True, value_cardinality=50)
    schema.element("M", has_text=True, value_cardinality=20)
    return schema


class TestScope:
    def test_descendant_range_paper_figure5(self):
        # Figure 5: (P,e) is <1,8>; (S,P) is <2,4>; (v2,PSL) is <6,0>.
        root = Scope(1, 8)
        seller = Scope(2, 4)
        v2 = Scope(6, 0)
        assert root.covers(seller)
        assert seller.covers(v2)
        assert root.contains_descendant_id(6)
        assert not seller.contains_descendant_id(7)  # (B,P) is <7,2>

    def test_own_id_is_not_descendant(self):
        s = Scope(5, 3)
        assert not s.contains_descendant_id(5)
        assert s.contains_descendant_id(8)
        assert not s.contains_descendant_id(9)

    def test_doc_range_is_closed(self):
        assert Scope(5, 3).doc_range() == (5, 8)

    def test_covers_requires_strict_nesting(self):
        assert not Scope(5, 3).covers(Scope(5, 3))
        assert Scope(5, 3).covers_or_equal(Scope(5, 3))
        assert not Scope(5, 3).covers(Scope(4, 10))

    def test_validation(self):
        with pytest.raises(LabelingError):
            Scope(-1, 4)
        with pytest.raises(LabelingError):
            Scope(1, -4)


class TestChain:
    def test_lambda_two_halving(self):
        """Figure 8: with λ=2 the k-th child gets 1/2^k of the region."""
        chain = Chain()
        first = chain.allocate(1, 1024, 2)
        second = chain.allocate(1, 1024, 2)
        third = chain.allocate(1, 1024, 2)
        assert first == Scope(1, 511)  # [1, 513) => size 511
        assert second == Scope(513, 255)
        assert third == Scope(769, 127)

    def test_disjoint_and_ordered(self):
        chain = Chain()
        scopes = [chain.allocate(0, 10_000, 3) for _ in range(10)]
        for a, b in zip(scopes, scopes[1:]):
            assert a.end < b.n

    def test_underflow_returns_none(self):
        chain = Chain()
        for _ in range(50):
            if chain.allocate(0, 64, 2) is None:
                break
        else:
            pytest.fail("chain never underflowed")
        assert chain.allocate(0, 64, 2) is None

    def test_roundtrip(self):
        chain = Chain()
        chain.allocate(5, 1000, 2)
        data = chain.to_bytes()
        restored, offset = Chain.from_bytes(data, 0)
        assert offset == len(data)
        assert restored == chain

    @given(
        width=st.integers(min_value=2, max_value=1 << 200),
        lam=st.integers(min_value=2, max_value=1000),
        count=st.integers(min_value=1, max_value=60),
    )
    def test_property_children_nest_in_region(self, width, lam, count):
        chain = Chain()
        region = Scope(100, width)
        for _ in range(count):
            scope = chain.allocate(region.n + 1, width - 1, lam)
            if scope is None:
                break
            assert region.covers(scope)


class TestNodeState:
    def test_roundtrip(self):
        state = NodeState(scope=Scope(7, 1 << 128), parent_n=3, refs=5, private=True)
        state.plain.allocate(8, 1000, 2)
        state.reserve_used = 17
        restored = NodeState.from_bytes(7, state.to_bytes())
        assert restored == state

    def test_rejects_garbage(self):
        with pytest.raises(Exception):
            NodeState.from_bytes(7, b"")
        with pytest.raises(Exception):
            NodeState.from_bytes(7, NodeState(Scope(1, 2), 0).to_bytes() + b"zz")


class TestFollowSets:
    def test_element_children_in_order(self):
        fs = FollowSets(purchase_schema())
        cands = fs.candidates(Item("S", ("P",)))
        labels = [c.label for c in cands]
        # children of S first (N, I, L), then B (sibling under P)
        assert labels[:3] == ["N", "I", "L"]
        assert "B" in labels

    def test_value_first_for_text_elements(self):
        fs = FollowSets(purchase_schema())
        cands = fs.candidates(Item("N", ("P", "S")))
        assert cands[0].label == VALUE
        assert cands[0].prefix == ("P", "S", "N")

    def test_repeatable_node_follows_itself(self):
        fs = FollowSets(purchase_schema())
        cands = fs.candidates(Item("M", ("P", "S", "I")))
        # after I's M child: value of M, then N/I children of I... climbing,
        # I itself repeats under S
        repeats = [c for c in cands if c.label == "I" and c.prefix == ("P", "S")]
        assert repeats

    def test_value_item_climbs_from_owner(self):
        fs = FollowSets(purchase_schema())
        cands = fs.candidates(Item(12345, ("P", "S", "N")))
        labels = [(c.label, c.prefix) for c in cands]
        # After the value of (N, PS): I then L under S, then B under P.
        assert ("I", ("P", "S")) in labels
        assert ("L", ("P", "S")) in labels
        assert ("B", ("P",)) in labels

    def test_probabilities_chain_eq2(self):
        schema = Schema("x")
        schema.element("x", [ChildSpec("u", prob=0.8), ChildSpec("v", prob=0.5)])
        fs = FollowSets(schema, value_prob=0.0)
        cands = fs.candidates(Item("x", ()))
        by_label = {c.label: c.probability for c in cands}
        assert by_label["u"] == pytest.approx(0.8)
        assert by_label["v"] == pytest.approx(0.2 * 0.5)

    def test_probabilities_sum_below_one(self):
        fs = FollowSets(purchase_schema())
        cands = fs.candidates(Item("S", ("P",)))
        assert sum(c.probability for c in cands) <= 1.0 + 1e-9

    def test_root_candidates(self):
        fs = FollowSets(purchase_schema())
        (root,) = fs.root_candidates()
        assert root.label == "P"
        assert root.prefix == ()
        assert root.probability == 1.0

    def test_cache_returns_same_object(self):
        fs = FollowSets(purchase_schema())
        a = fs.candidates(Item("S", ("P",)))
        b = fs.candidates(Item("S", ("P",)))
        assert a is b


class TestLambdaAllocator:
    def test_places_disjoint_children(self):
        alloc = LambdaAllocator(lam=2)
        state = NodeState(scope=Scope(0, DEFAULT_MAX - 1), parent_n=0)
        a = alloc.place(state, None, Item("P", ()))
        b = alloc.place(state, None, Item("Q", ()))
        assert a is not None and b is not None
        assert a.end < b.n
        assert state.scope.covers(a) and state.scope.covers(b)

    def test_lambda_validation(self):
        with pytest.raises(LabelingError):
            LambdaAllocator(lam=1)
        with pytest.raises(LabelingError):
            LambdaAllocator(reserve_divisor=1)

    def test_stats_driven_lambda(self):
        stats = CorpusStats()
        alloc = LambdaAllocator(lam=2, stats=stats)
        assert alloc.lam_for(Item("anything", ())) == 2  # falls back to default
        assert alloc.lam_for(None) == 2

    def test_underflow_in_tiny_scope(self):
        alloc = LambdaAllocator(lam=2)
        state = NodeState(scope=Scope(0, 1), parent_n=0)
        assert alloc.place(state, None, Item("a", ())) is None

    def test_reserve_borrowing(self):
        alloc = LambdaAllocator(lam=2, reserve_divisor=4)
        state = NodeState(scope=Scope(0, 1600), parent_n=0)
        reserve = alloc.reserve_size(state.scope)
        assert reserve == 400
        start = alloc.borrow_block(state, 10)
        assert start == state.scope.end - reserve + 1
        again = alloc.borrow_block(state, 10)
        assert again == start + 10
        assert alloc.borrow_block(state, reserve) is None  # exhausted

    def test_borrow_never_collides_with_usable(self):
        alloc = LambdaAllocator(lam=2, reserve_divisor=4)
        state = NodeState(scope=Scope(0, 1600), parent_n=0)
        child = alloc.place(state, None, Item("a", ()))
        start = alloc.borrow_block(state, 5)
        assert child.end < start


class TestClueAllocator:
    def make(self):
        fs = FollowSets(purchase_schema())
        return ClueAllocator(fs), fs

    def root_state(self):
        return NodeState(scope=Scope(0, DEFAULT_MAX - 1), parent_n=0)

    def test_deterministic_slots(self):
        alloc, _ = self.make()
        s1 = self.root_state()
        s2 = self.root_state()
        a = alloc.place(s1, Item("P", ()), Item("S", ("P",)))
        b = alloc.place(s2, Item("P", ()), Item("S", ("P",)))
        assert a == b  # clue slots do not depend on insertion order

    def test_different_children_disjoint(self):
        alloc, _ = self.make()
        state = NodeState(scope=Scope(0, DEFAULT_MAX - 1), parent_n=0)
        parent = Item("S", ("P",))
        scopes = [
            alloc.place(state, parent, Item("N", ("P", "S"))),
            alloc.place(state, parent, Item("I", ("P", "S"))),
            alloc.place(state, parent, Item("L", ("P", "S"))),
        ]
        assert all(s is not None for s in scopes)
        for i, a in enumerate(scopes):
            for b in scopes[i + 1 :]:
                assert a.end < b.n or b.end < a.n

    def test_values_get_distinct_scopes(self):
        alloc, _ = self.make()
        state = NodeState(scope=Scope(0, DEFAULT_MAX - 1), parent_n=0)
        parent = Item("N", ("P", "S"))
        a = alloc.place(state, parent, Item(111, ("P", "S", "N")))
        b = alloc.place(state, parent, Item(222, ("P", "S", "N")))
        assert a is not None and b is not None
        assert a.end < b.n

    def test_unpredicted_child_goes_to_overflow(self):
        alloc, _ = self.make()
        state = NodeState(scope=Scope(0, DEFAULT_MAX - 1), parent_n=0)
        parent = Item("S", ("P",))
        rogue = alloc.place(state, parent, Item("ZZZ", ("P", "S")))
        assert rogue is not None
        assert state.extra.k == 1
        expected = alloc.place(state, parent, Item("N", ("P", "S")))
        assert expected.end < rogue.n or rogue.end < expected.n

    def test_root_item_placement(self):
        alloc, _ = self.make()
        state = self.root_state()
        scope = alloc.place(state, None, Item("P", ()))
        assert scope is not None
        assert state.scope.covers(scope)

    def test_config_validation(self):
        fs = FollowSets(purchase_schema())
        with pytest.raises(LabelingError):
            ClueAllocator(fs, clue_fraction=1.5)
        with pytest.raises(LabelingError):
            ClueAllocator(fs, fallback_lam=1)
