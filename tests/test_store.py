"""Tests for the combined-tree key layout (D-Ancestor ordering, Section 3.3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.index.store import (
    META_MAX_DEPTH_KEY,
    ROOT_KEY,
    decode_node_key,
    node_key,
)


class TestNodeKey:
    def test_roundtrip(self):
        key = node_key("L", ("P", "S"), 42)
        assert decode_node_key(key) == ("L", ("P", "S"), 42)

    def test_roundtrip_value_symbol(self):
        key = node_key(0xDEADBEEF, ("P", "S", "N"), 7)
        assert decode_node_key(key) == (0xDEADBEEF, ("P", "S", "N"), 7)

    def test_empty_prefix(self):
        assert decode_node_key(node_key("P", (), 1)) == ("P", (), 1)

    def test_order_symbol_first(self):
        assert node_key("A", ("Z", "Z"), 99) < node_key("B", ("A",), 0)

    def test_order_prefix_length_second(self):
        # Section 3.3: "ordered first by the Symbol, then by the length of
        # the Prefix, and lastly by the content of the Prefix"
        assert node_key("L", ("Z",), 99) < node_key("L", ("A", "A"), 0)

    def test_order_prefix_content_third(self):
        assert node_key("L", ("P", "B"), 99) < node_key("L", ("P", "S"), 0)

    def test_order_n_last(self):
        assert node_key("L", ("P", "S"), 5) < node_key("L", ("P", "S"), 6)

    def test_s_ancestor_range_is_contiguous(self):
        """All n values of one (symbol, prefix) form one key interval."""
        inside = [node_key("L", ("P", "S"), n) for n in [1, 5, 100, 10**30]]
        below = node_key("L", ("P", "B"), 10**40)
        above = node_key("L", ("P", "T"), 0)
        assert all(below < key < above for key in inside)
        assert inside == sorted(inside)

    def test_reserved_keys_never_collide_with_labels(self):
        for label in ["root", "max-depth", "a", "z"]:
            assert node_key(label, (), 0) not in (ROOT_KEY, META_MAX_DEPTH_KEY)

    @given(
        sym=st.one_of(st.text(min_size=1, max_size=8), st.integers(0, 2**64)),
        prefix=st.lists(st.text(min_size=1, max_size=6), max_size=5).map(tuple),
        n=st.integers(0, 1 << 128),
    )
    def test_property_roundtrip(self, sym, prefix, n):
        assert decode_node_key(node_key(sym, prefix, n)) == (sym, prefix, n)

    @given(
        prefix=st.lists(st.text(min_size=1, max_size=6), max_size=4).map(tuple),
        n1=st.integers(0, 1 << 100),
        n2=st.integers(0, 1 << 100),
    )
    def test_property_n_order(self, prefix, n1, n2):
        assert (node_key("x", prefix, n1) < node_key("x", prefix, n2)) == (n1 < n2)
