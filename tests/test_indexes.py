"""Behavioural tests run uniformly over Naive, RIST and ViST.

The three indexes implement the same query semantics (the paper uses one
matching algorithm for RIST/ViST and proves the naïve algorithm
equivalent), so every test here runs against each of them via the
``any_index`` fixture.
"""

import pytest

from tests.conftest import build_figure3_record, build_record


@pytest.fixture
def loaded(any_index):
    """The Figure 3 record plus a small corpus with known answers."""
    index = any_index
    ids = {}
    ids["fig3"] = index.add(build_figure3_record())
    ids["bos_ny"] = index.add(build_record("boston", "newyork", ["intel"]))
    ids["bos_la"] = index.add(build_record("boston", "losangeles", ["amd"]))
    ids["sf_ny"] = index.add(build_record("sanfrancisco", "newyork", ["intel", "ibm"]))
    ids["sf_sf"] = index.add(build_record("sanfrancisco", "sanfrancisco", []))
    return index, ids


class TestPaperQueries:
    """The four queries of paper Figure 2 / Table 2."""

    def test_q1_manufacturer_path(self, loaded):
        index, ids = loaded
        got = index.query("/P/S/I/M")
        # every record whose seller has an item with a manufacturer
        assert got == sorted([ids["fig3"], ids["bos_ny"], ids["bos_la"], ids["sf_ny"]])

    def test_q2_boston_seller_ny_buyer(self, loaded):
        index, ids = loaded
        got = index.query("/P[S[L='boston']]/B[L='newyork']")
        assert got == sorted([ids["fig3"], ids["bos_ny"]])

    def test_q3_star_boston(self, loaded):
        index, ids = loaded
        got = index.query("/P/*[L='boston']")
        assert got == sorted([ids["fig3"], ids["bos_ny"], ids["bos_la"]])

    def test_q3_star_finds_buyers_too(self, loaded):
        index, ids = loaded
        got = index.query("/P/*[L='newyork']")
        assert got == sorted([ids["fig3"], ids["bos_ny"], ids["sf_ny"]])

    def test_q4_dslash_intel(self, loaded):
        index, ids = loaded
        got = index.query("/P//I[M='intel']")
        assert got == sorted([ids["bos_ny"], ids["sf_ny"]])

    def test_q4_dslash_reaches_subitems(self, loaded):
        index, ids = loaded
        # part#2 is the manufacturer of a sub-item in the Figure 3 record
        got = index.query("/P//I[M='part#2']")
        assert got == [ids["fig3"]]
        # a direct-path query cannot reach the nested item
        assert index.query("/P/S/I[M='part#2']") == []
        # but the two-level path can
        assert index.query("/P/S/I/I[M='part#2']") == [ids["fig3"]]


class TestQueryShapes:
    def test_no_match_returns_empty(self, loaded):
        index, _ = loaded
        assert index.query("/P/S/I[M='nonexistent']") == []
        assert index.query("/Q") == []

    def test_root_only_query(self, loaded):
        index, ids = loaded
        assert index.query("/P") == sorted(ids.values())

    def test_leading_dslash(self, loaded):
        index, ids = loaded
        got = index.query("//L[text='boston']")
        assert got == sorted([ids["fig3"], ids["bos_ny"], ids["bos_la"]])

    def test_leading_star(self, loaded):
        index, ids = loaded
        got = index.query("/*/B")
        assert got == sorted(ids.values())

    def test_value_on_deep_path(self, loaded):
        index, ids = loaded
        got = index.query("/P/S/N[text='dell']")
        assert got == [ids["fig3"]]

    def test_multi_branch_query(self, loaded):
        index, ids = loaded
        got = index.query("/P[S[N='dell']][B[N='panasia']]")
        assert got == [ids["fig3"]]

    def test_star_binding_consistency(self, loaded):
        index, ids = loaded
        # The same * must bind to one label for both L and N:
        # seller has N=seller-of-boston and L=boston; no single element of
        # sf_ny has L='boston'.
        got = index.query("/P/*[L='boston'][N='seller-of-boston']")
        assert got == sorted([ids["bos_ny"], ids["bos_la"]])

    def test_query_tree_input(self, loaded):
        index, ids = loaded
        from repro.query.xpath import parse_xpath

        tree = parse_xpath("/P/S[L='boston']")
        assert index.query(tree) == index.query("/P/S[L='boston']")

    def test_verified_mode_agrees_on_clean_queries(self, loaded):
        index, _ = loaded
        for expr in ["/P/S/I/M", "/P[S[L='boston']]/B[L='newyork']", "/P//I[M='intel']"]:
            assert index.query(expr) == index.query(expr, verify=True)


class TestSameLabelBranches:
    def test_q5_union_of_permutations(self, any_index):
        from repro.doc.model import XmlNode

        index = any_index
        # doc1: A with B(C) before B(D); doc2: reversed; doc3: one B with only C
        def doc(first, second):
            a = XmlNode("A")
            a.element("B").element(first)
            a.element("B").element(second)
            return a

        d1 = index.add(doc("C", "D"))
        d2 = index.add(doc("D", "C"))
        a3 = XmlNode("A")
        a3.element("B").element("C")
        d3 = index.add(a3)
        got = index.query("/A[B/C]/B/D")
        assert got == sorted([d1, d2])


class TestDocumentRoundTrip:
    def test_load_sequence(self, loaded):
        index, ids = loaded
        seq = index.load_sequence(ids["fig3"])
        expected = index.encoder.encode_node(build_figure3_record())
        assert seq == expected

    def test_len(self, loaded):
        index, ids = loaded
        assert len(index) == len(ids)
