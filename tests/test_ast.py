"""Guards and helpers on the query AST types."""

import pytest

from repro.errors import QueryError
from repro.query.ast import Dslash, QueryItem, QueryNode, QuerySequence, Star
from repro.query.xpath import parse_xpath


class TestQueryNodeGuards:
    def test_empty_label_rejected(self):
        with pytest.raises(QueryError):
            QueryNode("")

    def test_wildcard_flags(self):
        assert QueryNode("*").is_star
        assert QueryNode("//").is_dslash
        assert QueryNode("*").is_wildcard
        assert not QueryNode("a").is_wildcard

    def test_preorder(self):
        root = parse_xpath("/a[b]/c")
        labels = [n.label for n in root.preorder()]
        assert labels == ["a", "b", "c"]

    def test_main_child_skips_predicates(self):
        root = parse_xpath("/a[b][c]/d")
        assert root.main_child().label == "d"
        leaf = parse_xpath("/a[b]")
        assert leaf.main_child() is None
        assert leaf.result_node() is leaf

    def test_result_node_through_dslash(self):
        root = parse_xpath("/a//b")
        assert root.result_node().label == "b"


class TestQuerySequence:
    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            QuerySequence([])

    def test_immutable(self):
        seq = QuerySequence([QueryItem("a", ())])
        with pytest.raises(AttributeError):
            seq.items = ()

    def test_hash_and_eq(self):
        a = QuerySequence([QueryItem("a", ("r",))])
        b = QuerySequence([QueryItem("a", ("r",))])
        assert a == b
        assert len({a, b}) == 1

    def test_indexing(self):
        seq = QuerySequence([QueryItem("a", ()), QueryItem("b", ("a",))])
        assert len(seq) == 2
        assert seq[1].symbol == "b"
        assert [i.symbol for i in seq] == ["a", "b"]


class TestQueryItem:
    def test_wildcard_helpers(self):
        concrete = QueryItem("x", ("a", "b"))
        assert not concrete.has_wildcards
        assert concrete.min_prefix_len == 2
        assert concrete.is_exact_len
        starred = QueryItem("x", ("a", Star(0)))
        assert starred.has_wildcards
        assert starred.min_prefix_len == 2
        assert starred.is_exact_len
        slashed = QueryItem("x", ("a", Dslash(0)))
        assert slashed.min_prefix_len == 1
        assert not slashed.is_exact_len

    def test_tokens_are_identity_tagged(self):
        assert Star(0) == Star(0)
        assert Star(0) != Star(1)
        assert Dslash(0) != Star(0)
