"""Streaming record splitter: equivalence with split_records + encodings.

The contract of :func:`iter_stream_records` is byte-identical record
extraction to ``parse_document`` + ``split_records`` — same records,
same order, same spine handling — without materialising the corpus.
Doc-id assignment downstream depends on that order, so equivalence is
asserted structurally, record by record.
"""

import io
import tracemalloc

import pytest

from repro.doc import (
    decode_xml_bytes,
    detect_xml_encoding,
    iter_stream_records,
    parse_document,
    parse_document_bytes,
)
from repro.doc.split import split_records
from repro.errors import DocumentError, XmlParseError

NESTED = """\
<?xml version="1.0"?>
<corpus date="2003">
  <noise><skip>me</skip></noise>
  <record id="r1">
    <field>alpha</field>
    <record id="r1.1"><field>nested</field></record>
  </record>
  <other label="x"/>
  <record id="r2"><field>beta</field></record>
  <group>
    <record id="r3"><field>gamma</field></record>
  </group>
</corpus>
"""


def _shape(node):
    return (
        node.label,
        tuple(sorted(node.attributes.items())),
        node.text or "",
        tuple(_shape(child) for child in node.children),
    )


class TestEquivalence:
    @pytest.mark.parametrize("keep_spine", [True, False])
    def test_matches_split_records(self, keep_spine):
        baseline = split_records(
            parse_document(NESTED).root, ["record"], keep_spine=keep_spine
        )
        streamed = list(
            iter_stream_records(
                NESTED.encode(), ["record"], keep_spine=keep_spine
            )
        )
        assert [_shape(n) for n in streamed] == [_shape(n) for n in baseline]

    def test_multiple_labels(self):
        labels = ["record", "other"]
        baseline = split_records(parse_document(NESTED).root, labels)
        streamed = list(iter_stream_records(NESTED.encode(), labels))
        assert [_shape(n) for n in streamed] == [_shape(n) for n in baseline]

    def test_no_labels_yields_whole_document(self):
        (root,) = iter_stream_records(NESTED.encode())
        assert _shape(root) == _shape(parse_document(NESTED).root)

    def test_sources_are_interchangeable(self, tmp_path):
        data = NESTED.encode()
        path = tmp_path / "corpus.xml"
        path.write_bytes(data)
        from_bytes = [_shape(n) for n in iter_stream_records(data, ["record"])]
        from_path = [_shape(n) for n in iter_stream_records(path, ["record"])]
        with open(path, "rb") as fh:
            from_file = [_shape(n) for n in iter_stream_records(fh, ["record"])]
        assert from_bytes == from_path == from_file

    def test_tiny_chunks_do_not_change_output(self):
        baseline = [_shape(n) for n in iter_stream_records(NESTED.encode(), ["record"])]
        tiny = [
            _shape(n)
            for n in iter_stream_records(NESTED.encode(), ["record"], chunk_size=7)
        ]
        assert tiny == baseline


class TestErrors:
    def test_empty_label_list_rejected(self):
        with pytest.raises(DocumentError):
            list(iter_stream_records(NESTED.encode(), []))

    def test_malformed_xml(self):
        with pytest.raises(XmlParseError):
            list(iter_stream_records(b"<a><b></a>", ["b"]))

    def test_empty_stream(self):
        with pytest.raises(XmlParseError):
            list(iter_stream_records(b""))


class TestEncoding:
    def test_prolog_encoding_is_honoured(self):
        text = '<?xml version="1.0" encoding="ISO-8859-1"?><r><v>café</v></r>'
        data = text.encode("latin-1")
        (record,) = iter_stream_records(data, ["r"], keep_spine=False)
        assert record.children[0].text == "café"

    def test_parse_document_bytes_latin1(self):
        text = '<?xml version="1.0" encoding="ISO-8859-1"?><r n="ü">é</r>'
        doc = parse_document_bytes(text.encode("latin-1"))
        assert doc.root.attributes["n"] == "ü"
        assert doc.root.text == "é"

    def test_detect_encoding_variants(self):
        assert detect_xml_encoding(b"<a/>") == "utf-8"
        assert (
            detect_xml_encoding(b'<?xml version="1.0" encoding="ISO-8859-1"?><a/>')
            == "ISO-8859-1"
        )
        assert detect_xml_encoding("﻿<a/>".encode("utf-8-sig")) == "utf-8-sig"
        assert detect_xml_encoding("<a/>".encode("utf-16")).startswith("utf-16")
        assert detect_xml_encoding("<a/>".encode("utf-16-le")) in (
            "utf-16",
            "utf-16-le",
        )

    def test_decode_rejects_bad_bytes(self):
        # declared utf-8 but latin-1 payload: must fail loudly, not mojibake
        bad = '<?xml version="1.0" encoding="UTF-8"?><r>café</r>'.encode("latin-1")
        with pytest.raises(XmlParseError):
            decode_xml_bytes(bad)

    def test_unknown_encoding_name(self):
        with pytest.raises(XmlParseError):
            decode_xml_bytes(b'<?xml version="1.0" encoding="no-such-enc"?><a/>')


class TestMemory:
    def test_peak_memory_stays_flat(self):
        # ~200k records would be overkill for CI; 2MB of records is enough
        # to show the splitter retains O(record), not O(corpus)
        record = b'<record id="r"><field>some text payload here</field></record>\n'
        n_records = 8_000_000 // len(record)
        body = record * n_records
        data = b"<corpus>\n" + body + b"</corpus>"
        stream = io.BytesIO(data)
        tracemalloc.start()
        count = 0
        for node in iter_stream_records(stream, ["record"], keep_spine=False):
            count += 1
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == n_records
        # parser buffers + one record at a time: nowhere near the corpus
        assert peak < len(data) / 4
