"""Tests for the baseline indexes: labels, joins, and full-query agreement
with ViST on every query shape the paper benchmarks."""

import random

import pytest

from repro.baselines.apex import ApexIndex
from repro.baselines.joins import merge_doc_ids, structural_semijoin
from repro.baselines.labels import Occurrence, sequence_occurrences
from repro.baselines.nodeindex import XissIndex
from repro.baselines.pathindex import PathIndex
from repro.doc.model import XmlNode
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from tests.conftest import (
    build_figure3_record,
    build_purchase_schema,
    build_record,
)


class TestOccurrenceLabels:
    def test_simple_tree(self):
        root = XmlNode("a")
        root.element("b", text="v")
        root.element("c")
        seq = SequenceEncoder().encode_node(root)
        # preorder: a, b, h(v), c
        occs = sequence_occurrences(seq, doc_id=7)
        by_symbol = {sym: occ for sym, _, occ in occs}
        a = by_symbol["a"]
        b = by_symbol["b"]
        c = by_symbol["c"]
        assert a == Occurrence(7, 0, 3, 0)
        assert b == Occurrence(7, 1, 2, 1)
        assert c == Occurrence(7, 3, 3, 1)
        assert a.contains(b) and a.contains(c)
        assert a.is_parent_of(b)
        assert not b.contains(c)

    def test_value_leaf_is_its_own_subtree(self):
        root = XmlNode("a", text="v")
        seq = SequenceEncoder().encode_node(root)
        occs = sequence_occurrences(seq, doc_id=0)
        (_, _, a), (_, _, leaf) = occs
        assert leaf.start == leaf.end == 1
        assert a.is_parent_of(leaf)

    def test_deep_nesting_ends(self):
        root = XmlNode("a")
        root.element("b").element("c")
        root.element("d")
        seq = SequenceEncoder().encode_node(root)
        occs = {sym: occ for sym, _, occ in sequence_occurrences(seq, 0)}
        assert occs["a"].end == 3
        assert occs["b"].end == 2
        assert occs["c"].end == 2  # c is b's only child; subtree = itself


class TestStructuralJoin:
    def occ(self, doc, start, end, level):
        return Occurrence(doc, start, end, level)

    def test_ancestor_descendant(self):
        anc = [self.occ(0, 0, 10, 0), self.occ(1, 0, 10, 0)]
        desc = [self.occ(0, 5, 5, 3)]
        assert structural_semijoin(anc, desc) == [anc[0]]

    def test_parent_child_level_filter(self):
        anc = [self.occ(0, 0, 10, 0)]
        grandchild = [self.occ(0, 5, 5, 2)]
        child = [self.occ(0, 4, 6, 1)]
        assert structural_semijoin(anc, grandchild, parent_child=True) == []
        assert structural_semijoin(anc, child, parent_child=True) == anc

    def test_parent_child_skips_nonmatching_then_finds(self):
        anc = [self.occ(0, 0, 10, 0)]
        inner = [self.occ(0, 2, 2, 3), self.occ(0, 5, 5, 1)]
        assert structural_semijoin(anc, inner, parent_child=True) == anc

    def test_empty_inputs(self):
        assert structural_semijoin([], [self.occ(0, 1, 1, 1)]) == []
        assert structural_semijoin([self.occ(0, 0, 1, 0)], []) == []

    def test_doc_boundary(self):
        anc = [self.occ(0, 0, 10, 0)]
        desc = [self.occ(1, 5, 5, 1)]
        assert structural_semijoin(anc, desc) == []

    def test_merge_doc_ids(self):
        occs = [self.occ(3, 0, 1, 0), self.occ(1, 0, 1, 0), self.occ(3, 2, 2, 1)]
        assert merge_doc_ids(occs) == {1, 3}


BASELINE_FACTORIES = {"path": PathIndex, "xiss": XissIndex, "apex": ApexIndex}


@pytest.fixture(params=sorted(BASELINE_FACTORIES))
def baseline(request):
    encoder = SequenceEncoder(schema=build_purchase_schema())
    return BASELINE_FACTORIES[request.param](encoder)


class TestBaselineQueries:
    @pytest.fixture
    def loaded(self, baseline):
        ids = {}
        ids["fig3"] = baseline.add(build_figure3_record())
        ids["bos_ny"] = baseline.add(build_record("boston", "newyork", ["intel"]))
        ids["bos_la"] = baseline.add(build_record("boston", "losangeles", ["amd"]))
        ids["sf_ny"] = baseline.add(
            build_record("sanfrancisco", "newyork", ["intel", "ibm"])
        )
        return baseline, ids

    def test_single_path(self, loaded):
        index, ids = loaded
        got = index.query("/P/S/I/M")
        assert got == sorted([ids["fig3"], ids["bos_ny"], ids["bos_la"], ids["sf_ny"]])

    def test_path_with_value(self, loaded):
        index, ids = loaded
        assert index.query("/P/S/L[text='boston']") == sorted(
            [ids["fig3"], ids["bos_ny"], ids["bos_la"]]
        )

    def test_branching(self, loaded):
        index, ids = loaded
        got = index.query("/P[S[L='boston']]/B[L='newyork']")
        assert got == sorted([ids["fig3"], ids["bos_ny"]])

    def test_star(self, loaded):
        index, ids = loaded
        got = index.query("/P/*[L='newyork']")
        assert got == sorted([ids["fig3"], ids["bos_ny"], ids["sf_ny"]])

    def test_dslash(self, loaded):
        index, ids = loaded
        got = index.query("/P//I[M='part#2']")
        assert got == [ids["fig3"]]

    def test_leading_dslash(self, loaded):
        index, ids = loaded
        got = index.query("//L[text='boston']")
        assert got == sorted([ids["fig3"], ids["bos_ny"], ids["bos_la"]])

    def test_no_match(self, loaded):
        index, _ = loaded
        assert index.query("/P/S/I[M='nope']") == []
        assert index.query("/Z") == []

    def test_join_counters_track_effort(self, loaded):
        index, _ = loaded
        before = index.join_count
        index.query("/P[S[L='boston']]/B[L='newyork']")
        assert index.join_count > before

    def test_raw_path_uses_no_joins_on_pathindex(self, loaded):
        index, _ = loaded
        if not isinstance(index, PathIndex):
            pytest.skip("path-index-specific")
        before = index.join_count
        index.query("/P/S/L[text='boston']")
        assert index.join_count == before  # single lookup, no joins


class TestBaselinesAgreeWithVist:
    """Randomised agreement: both baselines return exactly ViST's verified
    results (baselines are join-based, hence exact — no false positives)."""

    LABELS = ["a", "b", "c"]
    VALUES = ["x", "y"]

    def random_doc(self, rng: random.Random) -> XmlNode:
        root = XmlNode("r")
        nodes = [root]
        for _ in range(rng.randint(1, 9)):
            parent = rng.choice(nodes)
            child = parent.element(rng.choice(self.LABELS))
            if rng.random() < 0.4:
                child.text = rng.choice(self.VALUES)
            nodes.append(child)
        return root

    QUERIES = [
        "/r/a",
        "/r/a/b",
        "/r[a]/b",
        "/r//c",
        "/r/*/b",
        "//b[text='x']",
        "/r[a/b]/c",
        "/r/a[text='y']",
        "/r//b[text='x']",
    ]

    def test_agreement(self):
        rng = random.Random(7)
        docs = [self.random_doc(rng) for _ in range(30)]
        vist = VistIndex(SequenceEncoder())
        path = PathIndex(SequenceEncoder())
        xiss = XissIndex(SequenceEncoder())
        apex = ApexIndex(SequenceEncoder())
        for doc in docs:
            vist.add(doc)
            path.add(doc)
            xiss.add(doc)
            apex.add(doc)
        for expr in self.QUERIES:
            truth = vist.query(expr, verify=True)
            assert path.query(expr) == truth, expr
            assert xiss.query(expr) == truth, expr
            assert apex.query(expr) == truth, expr
