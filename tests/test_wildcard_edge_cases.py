"""Edge-case wildcard semantics pinned explicitly.

A childless wildcard step carries an existence constraint the sequence
encoding cannot express (translation discards the wildcard node), so
`query()` verifies such queries automatically — on every index type.
"""

import pytest

from repro.doc.model import XmlNode
from repro.index.naive import NaiveIndex
from repro.index.rist import RistIndex
from repro.index.vist import VistIndex
from repro.baselines.nodeindex import XissIndex
from repro.baselines.pathindex import PathIndex
from repro.query.xpath import parse_xpath
from repro.sequence.transform import SequenceEncoder
from repro.testing.reference import reference_results

ALL_KINDS = [NaiveIndex, RistIndex, VistIndex, PathIndex, XissIndex]


def leafy() -> XmlNode:
    """r -> a (a is a leaf)."""
    r = XmlNode("r")
    r.element("a")
    return r


def nested() -> XmlNode:
    """r -> a -> b."""
    r = XmlNode("r")
    r.element("a").element("b")
    return r


@pytest.fixture(params=ALL_KINDS, ids=lambda c: c.__name__)
def pair_index(request):
    index = request.param(SequenceEncoder())
    leaf_id = index.add(leafy())
    nested_id = index.add(nested())
    return index, leaf_id, nested_id


class TestTrailingWildcards:
    def test_trailing_star_requires_a_child(self, pair_index):
        index, leaf_id, nested_id = pair_index
        assert index.query("/r/a/*") == [nested_id]

    def test_trailing_star_on_root(self, pair_index):
        index, leaf_id, nested_id = pair_index
        assert index.query("/r/*") == sorted([leaf_id, nested_id])

    def test_double_trailing_star(self, pair_index):
        index, leaf_id, nested_id = pair_index
        # a chain of two wildcard steps: only r -> a -> b reaches depth 2
        assert index.query("/r/*/*") == [nested_id]

    def test_star_only_query(self, pair_index):
        index, leaf_id, nested_id = pair_index
        assert index.query("/*") == sorted([leaf_id, nested_id])

    def test_star_branch_without_children(self, pair_index):
        index, leaf_id, nested_id = pair_index
        # [*] predicate: "has at least one element child"
        assert index.query("/r/a[*]") == [nested_id]


class TestWildcardsWithValues:
    def test_value_under_star(self):
        index = VistIndex(SequenceEncoder())
        r = XmlNode("r")
        r.element("a", text="hit")
        miss = XmlNode("r")
        miss.element("b", text="other")
        hit_id = index.add(r)
        index.add(miss)
        assert index.query("/r/*[text='hit']") == [hit_id]

    def test_dslash_value_only(self):
        index = VistIndex(SequenceEncoder())
        deep = XmlNode("r")
        deep.element("x").element("y").element("z", text="needle")
        deep_id = index.add(deep)
        index.add(leafy())
        assert index.query("//z[text='needle']") == [deep_id]

    def test_dslash_matches_root_child(self):
        """`//` may bind the empty chain: /r//a includes direct children."""
        index = VistIndex(SequenceEncoder())
        doc_id = index.add(leafy())
        assert index.query("/r//a") == [doc_id]


# -- oracle-checked edge cases -----------------------------------------------
#
# These corpora/queries exercise the relaxed-candidate machinery
# (same-label sibling branches, wildcard-beside-branch) and `//*//`
# chains.  Instead of hand-deriving the answer per case, the expected
# result comes from the independent reference evaluator over the
# original trees — the same oracle the randomized harness uses.


def _same_label_branch_corpus() -> list[XmlNode]:
    """Documents distinguishing [a/b][a/c] from a[b][c] under wildcards."""
    docs = []

    one_a_both = XmlNode("r")  # a single `a` holding both b and c
    a = one_a_both.element("a")
    a.element("b")
    a.element("c")
    docs.append(one_a_both)

    split_as = XmlNode("r")  # two sibling `a`s, one b, one c
    split_as.element("a").element("b")
    split_as.element("a").element("c")
    docs.append(split_as)

    b_only = XmlNode("r")
    b_only.element("a").element("b")
    docs.append(b_only)

    deep = XmlNode("r")  # b and c one level deeper, via x
    x = deep.element("a").element("x")
    x.element("b")
    x.element("c")
    docs.append(deep)

    star_decoy = XmlNode("r")  # `a` beside a same-label branch through `d`
    star_decoy.element("a").element("b")
    star_decoy.element("d").element("a")
    docs.append(star_decoy)

    return docs


_EDGE_QUERIES = [
    # `*` under same-label sibling branches (relaxed-candidate path)
    "/r[a/b][a/c]",
    "/r/a[b][c]",
    "/r[a/b][a/*]",
    "/r[*/b][a/c]",
    "/r/*[b][c]",
    # `//*//` chains: wildcard between two descendant axes
    "//*//b",
    "/r//*//b",
    "//*//*",
    "//a//*",
    "/r//*//c",
]


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda c: c.__name__)
@pytest.mark.parametrize("xpath", _EDGE_QUERIES)
def test_wildcard_edge_cases_match_reference(kind, xpath):
    encoder = SequenceEncoder()
    index = kind(encoder)
    docs = _same_label_branch_corpus()
    positions = {index.add(doc): pos for pos, doc in enumerate(docs)}
    query = parse_xpath(xpath)
    expected = reference_results(docs, query, encoder.hasher)
    got = sorted(positions[doc_id] for doc_id in index.query(xpath, verify=True))
    assert got == expected, f"{kind.__name__} diverged from reference on {xpath!r}"
