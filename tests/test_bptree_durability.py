"""Durability-oriented B+Tree properties: flush/reopen interleavings,
page-size sweeps, and buffer-pool-backed operation."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.bptree import BPlusTree
from repro.storage.cache import BufferPool
from repro.storage.pager import FilePager, MemoryPager


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    batches=st.lists(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 40), st.integers(0, 3)),
            max_size=30,
        ),
        min_size=1,
        max_size=4,
    )
)
def test_flush_reopen_between_batches(tmp_path_factory, batches):
    """Insert/delete batches with a full close + reopen between each batch
    must equal the same operations against an always-open reference."""
    path = tmp_path_factory.mktemp("bpt") / "t.db"
    model: set[tuple[bytes, bytes]] = set()
    for batch in batches:
        pager = FilePager(path, page_size=256)
        tree = BPlusTree(pager)
        for is_insert, ki, vi in batch:
            k = f"k{ki:03d}".encode()
            v = f"v{vi}".encode()
            if is_insert and (k, v) not in model:
                tree.insert(k, v)
                model.add((k, v))
            elif not is_insert and (k, v) in model:
                assert tree.delete(k, v) == 1
                model.discard((k, v))
        tree.close()
        pager.close()
    pager = FilePager(path)
    tree = BPlusTree(pager)
    assert list(tree.items()) == sorted(model)
    assert len(tree) == len(model)
    pager.close()


@pytest.mark.parametrize("page_size", [128, 256, 512, 4096])
def test_page_size_sweep(page_size):
    """The tree behaves identically across page sizes (within key limits)."""
    tree = BPlusTree(MemoryPager(page_size=page_size))
    rng = random.Random(9)
    keys = [f"key-{i:05d}".encode() for i in range(400)]
    rng.shuffle(keys)
    for k in keys:
        tree.insert(k, b"v")
    assert len(tree) == 400
    assert [k for k, _ in tree.items()] == sorted(keys)
    for k in keys[:200]:
        assert tree.delete(k) == 1
    survivors = sorted(keys[200:])
    assert [k for k, _ in tree.items()] == survivors
    got = [k for k, _ in tree.range(survivors[10], survivors[50])]
    assert got == survivors[10:50]


def test_buffer_pool_smaller_than_working_set(tmp_path):
    """A pool far smaller than the tree still yields correct results."""
    pool = BufferPool(FilePager(tmp_path / "t.db", page_size=256), capacity=3)
    tree = BPlusTree(pool)
    for i in range(500):
        tree.insert(f"k{i:05d}".encode(), str(i).encode())
        if i % 97 == 0:
            tree.checkpoint(clear_cache=True)
    for i in range(0, 500, 7):
        assert tree.get(f"k{i:05d}".encode()) == str(i).encode()
    assert pool.stats.evictions > 0
    tree.close()
    pool.close()


def test_checkpoint_then_reader_sees_everything(tmp_path):
    """A second tree handle opened after checkpoint sees the full state."""
    pager = FilePager(tmp_path / "t.db", page_size=256)
    writer = BPlusTree(pager, slot=0)
    for i in range(100):
        writer.insert(f"k{i:03d}".encode(), b"v")
    writer.checkpoint()
    reader = BPlusTree(pager, slot=0)
    assert len(reader) == 100
    assert reader.get(b"k042") == b"v"
    pager.close()
