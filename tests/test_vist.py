"""ViST-specific tests: dynamic insertion, deletion, underflow, persistence."""

import pytest

from repro.doc.model import XmlNode
from repro.errors import IndexStateError, ScopeUnderflowError
from repro.index.rist import RistIndex
from repro.index.store import ROOT_KEY
from repro.index.vist import VistIndex
from repro.labeling.dynamic import LambdaAllocator, NodeState
from repro.sequence.transform import SequenceEncoder
from repro.storage.docstore import FileDocStore
from repro.storage.pager import FilePager
from tests.conftest import build_figure3_record, build_purchase_schema, build_record


def make_index(**kwargs) -> VistIndex:
    return VistIndex(SequenceEncoder(schema=build_purchase_schema()), **kwargs)


class TestDynamicInsertion:
    def test_insert_then_query_interleaved(self):
        index = make_index()
        a = index.add(build_record("boston", "newyork", ["intel"]))
        assert index.query("/P[S[L='boston']]") == [a]
        b = index.add(build_record("boston", "austin", ["amd"]))
        got = index.query("/P[S[L='boston']]")
        assert got == sorted([a, b])

    def test_rist_rejects_insert_after_query(self):
        index = RistIndex(SequenceEncoder(schema=build_purchase_schema()))
        index.add(build_record("boston", "newyork", ["intel"]))
        index.query("/P")
        with pytest.raises(IndexStateError):
            index.add(build_record("boston", "austin", ["amd"]))

    def test_shared_nodes_have_refcounts(self):
        index = make_index()
        index.add(build_record("boston", "newyork", ["intel"]))
        index.add(build_record("boston", "newyork", ["amd"]))
        root_state = NodeState.from_bytes(0, index.tree.get(ROOT_KEY))
        assert root_state.refs == 0  # root is not refcounted
        # the (P, ()) node is shared by both documents
        from repro.index.store import decode_node_key

        p_entries = [
            (decode_node_key(k), v)
            for k, v in index.tree.items()
            if k != ROOT_KEY and decode_node_key(k)[0] == "P"
        ]
        assert len(p_entries) == 1
        (_, _, n), value = p_entries[0]
        assert NodeState.from_bytes(n, value).refs == 2

    def test_empty_sequence_rejected(self):
        from repro.sequence.encoding import StructureEncodedSequence

        index = make_index()
        with pytest.raises(IndexStateError):
            index.add_sequence(StructureEncodedSequence([]))

    def test_labels_unique_without_refcounting(self):
        """Regression: with track_refs=False, parents whose allocation
        cursors advance must still be written back, or later insertions
        reuse the same scopes and labels collide across nodes."""
        from repro.index.store import ROOT_KEY, decode_node_key

        index = make_index(track_refs=False)
        for loc in ["boston", "austin", "dallas", "miami"]:
            index.add(build_record(loc, "newyork", ["intel", "amd"]))
            index.add(build_figure3_record())
        labels = [
            decode_node_key(key)[2]
            for key, _ in index.tree.items()
            if key != ROOT_KEY and decode_node_key(key)[2] != 0
        ]
        assert len(labels) == len(set(labels))

    def test_query_results_match_naive_without_refcounting(self):
        from repro.index.naive import NaiveIndex
        from repro.sequence.transform import SequenceEncoder as SE

        vist = make_index(track_refs=False)
        naive = NaiveIndex(SE(schema=build_purchase_schema()))
        for loc in ["boston", "austin", "boston", "dallas"]:
            record = build_record(loc, "newyork", ["intel"])
            vist.add(record)
            naive.add(record)
        for expr in ["/P[S[L='boston']]", "/P//I[M='intel']", "/P/*[L='newyork']"]:
            assert vist.query(expr) == naive.query(expr)

    def test_insertion_order_does_not_change_results(self):
        docs = [
            build_record("boston", "newyork", ["intel", "amd"]),
            build_record("austin", "boston", []),
            build_figure3_record(),
            build_record("newyork", "newyork", ["ibm"]),
        ]
        queries = ["/P[S[L='boston']]", "/P//I[M='intel']", "/P/*[L='newyork']"]

        def results(order):
            index = make_index()
            names = {}
            for i in order:
                names[index.add(docs[i])] = i
            return [
                sorted(names[d] for d in index.query(q)) for q in queries
            ]

        assert results([0, 1, 2, 3]) == results([3, 2, 1, 0]) == results([2, 0, 3, 1])


class TestSelfTuningStats:
    def test_stats_accumulate_from_sequences(self):
        index = VistIndex(SequenceEncoder())
        index.add(build_figure3_record())
        assert index.stats is not None
        assert index.stats.documents == 1
        assert index.stats.expected_fanout("S") > 1.0
        assert index.stats.distinct_values("L") >= 1

    def test_stats_match_document_observation(self):
        from repro.doc.model import XmlDocument
        from repro.doc.stats import CorpusStats

        doc = build_figure3_record()
        by_doc = CorpusStats()
        by_doc.observe(XmlDocument(doc))
        by_seq = CorpusStats()
        by_seq.observe_sequence(SequenceEncoder().encode_node(doc))
        for label in ["P", "S", "B", "I"]:
            assert by_seq.expected_fanout(label) == pytest.approx(
                by_doc.expected_fanout(label)
            )
        assert by_seq.nodes == by_doc.nodes

    def test_stats_drive_lambda_without_schema(self):
        index = VistIndex(SequenceEncoder())  # no schema => stats-driven λ
        assert index.allocator.stats is index.stats

    def test_stats_can_be_disabled(self):
        index = VistIndex(SequenceEncoder(), collect_stats=False)
        index.add(build_figure3_record())
        assert index.stats is None


class TestDeletion:
    def test_remove_hides_document(self):
        index = make_index()
        a = index.add(build_record("boston", "newyork", ["intel"]))
        b = index.add(build_record("boston", "austin", ["intel"]))
        index.remove(a)
        assert index.query("/P//I[M='intel']") == [b]
        assert len(index) == 1

    def test_remove_reclaims_unshared_entries(self):
        from repro.index.store import META_MAX_DEPTH_KEY

        index = make_index()
        a = index.add(build_record("boston", "newyork", ["intel"]))
        index.remove(a)
        # only the root state and the max-depth metadata survive
        remaining = {k for k, _ in index.tree.items()}
        assert remaining == {ROOT_KEY, META_MAX_DEPTH_KEY}
        assert len(index.docid_tree) == 0

    def test_remove_keeps_shared_entries(self):
        index = make_index()
        a = index.add(build_record("boston", "newyork", ["intel"]))
        b = index.add(build_record("boston", "newyork", ["intel"]))
        index.remove(a)
        assert index.query("/P[S[L='boston']]") == [b]

    def test_reinsert_after_remove(self):
        index = make_index()
        a = index.add(build_record("boston", "newyork", ["intel"]))
        index.remove(a)
        c = index.add(build_record("boston", "newyork", ["intel"]))
        assert index.query("/P[S[L='boston']]") == [c]

    def test_remove_requires_refcounts(self):
        index = make_index(track_refs=False)
        a = index.add(build_record("boston", "newyork", ["intel"]))
        with pytest.raises(IndexStateError):
            index.remove(a)

    def test_remove_unknown_doc(self):
        index = make_index()
        with pytest.raises(Exception):
            index.remove(12345)


class TestScopeUnderflow:
    def chain_doc(self, depth: int) -> XmlNode:
        root = XmlNode("c0")
        node = root
        for i in range(1, depth):
            node = node.element(f"c{i}")
        node.text = "leaf"
        return root

    def test_deep_chain_triggers_borrowing(self):
        # a tiny root scope forces underflow quickly
        index = VistIndex(
            SequenceEncoder(),
            allocator=LambdaAllocator(lam=2, reserve_divisor=2),
            max_label=1 << 24,
        )
        doc_id = index.add(self.chain_doc(24))
        assert index.underflow_count >= 1
        assert index.query("/c0/c1/c2") == [doc_id]
        deep_path = "/" + "/".join(f"c{i}" for i in range(24))
        assert index.query(deep_path) == [doc_id]

    def test_borrowed_nodes_not_shared(self):
        index = VistIndex(
            SequenceEncoder(),
            allocator=LambdaAllocator(lam=2, reserve_divisor=2),
            max_label=1 << 24,
        )
        a = index.add(self.chain_doc(24))
        b = index.add(self.chain_doc(24))  # identical structure
        assert index.underflow_count >= 2
        deep_path = "/" + "/".join(f"c{i}" for i in range(24))
        assert index.query(deep_path) == sorted([a, b])

    def test_borrowed_docs_can_be_removed(self):
        index = VistIndex(
            SequenceEncoder(),
            allocator=LambdaAllocator(lam=2, reserve_divisor=2),
            max_label=1 << 24,
        )
        a = index.add(self.chain_doc(24))
        b = index.add(self.chain_doc(20))
        index.remove(a)
        assert index.query("/c0/c1") == [b]

    def test_total_exhaustion_raises(self):
        index = VistIndex(
            SequenceEncoder(),
            allocator=LambdaAllocator(lam=2, reserve_divisor=2),
            max_label=64,
        )
        with pytest.raises(ScopeUnderflowError):
            for i in range(200):
                index.add(self.chain_doc(12))

    def test_no_underflow_with_roomy_scope(self):
        index = make_index()
        for loc in ["boston", "austin", "dallas"]:
            index.add(build_record(loc, "newyork", ["intel", "amd"]))
        assert index.underflow_count == 0


class TestPersistence:
    def test_reopen_from_disk(self, tmp_path):
        pager_path = tmp_path / "vist.db"
        docs_path = tmp_path / "docs.dat"
        encoder = SequenceEncoder(schema=build_purchase_schema())

        index = VistIndex(
            encoder,
            docstore=FileDocStore(docs_path),
            pager=FilePager(pager_path),
        )
        a = index.add(build_record("boston", "newyork", ["intel"]))
        index.flush()
        index.close()
        index.docstore.close()

        reopened = VistIndex(
            encoder,
            docstore=FileDocStore(docs_path),
            pager=FilePager(pager_path),
        )
        assert reopened.query("/P[S[L='boston']]") == [a]
        # dynamic insertion continues across sessions
        b = reopened.add(build_record("boston", "austin", ["amd"]))
        assert reopened.query("/P[S[L='boston']]") == sorted([a, b])
        reopened.close()
        reopened.docstore.close()

    def test_index_stats_shape(self):
        index = make_index()
        for loc in ["boston", "austin"]:
            index.add(build_record(loc, "newyork", ["intel"]))
        stats = index.index_stats()
        assert stats["combined"].entries > 10
        assert stats["docid"].entries == 2
