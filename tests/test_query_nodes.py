"""Tests for node-granularity query results (query_nodes / find_result_nodes)."""

import pytest

from repro.doc.model import XmlNode
from repro.index.verification import find_result_nodes
from repro.index.vist import VistIndex
from repro.query.xpath import parse_xpath
from repro.sequence.transform import SequenceEncoder


def positions(doc: XmlNode, expr: str) -> list[int]:
    encoder = SequenceEncoder()
    return find_result_nodes(
        encoder.encode_node(doc), parse_xpath(expr), encoder.hasher
    )


def labelled_positions(doc: XmlNode, expr: str) -> list:
    encoder = SequenceEncoder()
    seq = encoder.encode_node(doc)
    return [seq[p].symbol for p in positions(doc, expr)]


def sample() -> XmlNode:
    """r -> a(b, c[text=x]), a(c), d   (preorder: r a b c x a c d)"""
    r = XmlNode("r")
    a1 = r.element("a")
    a1.element("b")
    a1.element("c", text="x")
    a2 = r.element("a")
    a2.element("c")
    r.element("d")
    return r


class TestResultNodeSelection:
    def test_main_chain_vs_predicate(self):
        root = parse_xpath("/r/a[b]/c")
        assert root.result_node().label == "c"
        pred = parse_xpath("/r/a[b]")
        assert pred.result_node().label == "a"

    def test_simple_path_returns_leaf_step(self):
        # /r/a/b: the single b node
        assert labelled_positions(sample(), "/r/a/b") == ["b"]

    def test_multiple_bindings(self):
        # /r/a/c: both c elements
        assert labelled_positions(sample(), "/r/a/c") == ["c", "c"]

    def test_predicate_filters_bindings(self):
        # /r/a[b]/c: only the c under the first a
        got = positions(sample(), "/r/a[b]/c")
        assert len(got) == 1
        assert labelled_positions(sample(), "/r/a[b]/c") == ["c"]

    def test_result_is_the_predicated_step_itself(self):
        # /r/a[c='x']: the first a
        got = labelled_positions(sample(), "/r/a[c='x']")
        assert got == ["a"]
        assert positions(sample(), "/r/a[c='x']") == [1]

    def test_value_predicate_on_result(self):
        assert labelled_positions(sample(), "/r/a/c[text='x']") == ["c"]

    def test_star_step(self):
        got = labelled_positions(sample(), "/r/*")
        assert got == ["a", "a", "d"]

    def test_dslash_step(self):
        got = labelled_positions(sample(), "/r//c")
        assert len(got) == 2

    def test_leading_dslash(self):
        got = labelled_positions(sample(), "//b")
        assert got == ["b"]

    def test_no_match_is_empty(self):
        assert positions(sample(), "/r/zzz") == []
        assert positions(sample(), "/q") == []

    def test_root_only(self):
        assert positions(sample(), "/r") == [0]

    def test_positions_are_preorder_indices(self):
        encoder = SequenceEncoder()
        seq = encoder.encode_node(sample())
        got = positions(sample(), "/r/a/b")
        assert [seq[p].symbol for p in got] == ["b"]


class TestQueryNodesApi:
    def test_per_document_positions(self):
        index = VistIndex(SequenceEncoder())
        with_c = sample()
        without = XmlNode("r")
        without.element("d")
        a = index.add(with_c)
        index.add(without)
        result = index.query_nodes("/r/a/c")
        assert set(result) == {a}
        assert len(result[a]) == 2

    def test_exact_under_ambiguous_branches(self):
        index = VistIndex(SequenceEncoder())
        one_b = XmlNode("A")
        b = one_b.element("B")
        b.element("C")
        b.element("D")
        doc_id = index.add(one_b)
        result = index.query_nodes("/A[B/C]/B/D")
        # exact semantics: the single B satisfies both branches; result
        # node D is position 3 in preorder (A B C D)
        assert result == {doc_id: [3]}

    def test_accepts_query_tree(self):
        index = VistIndex(SequenceEncoder())
        doc_id = index.add(sample())
        tree = parse_xpath("/r/a/b")
        assert index.query_nodes(tree) == {doc_id: [2]}
