"""Tests for range/inequality value predicates (extension beyond the paper).

Hashes cannot answer `[year>'1999']`, so these predicates route through
source-based verification: the index keeps raw XML in a ``source_store``,
re-encodes candidates with a :class:`CapturingHasher`, and the verifier
compares actual strings (numeric-aware).
"""

import pytest

from repro.baselines.apex import ApexIndex
from repro.baselines.nodeindex import XissIndex
from repro.baselines.pathindex import PathIndex
from repro.doc.model import XmlNode
from repro.errors import IndexStateError, QueryError, QueryParseError
from repro.index.naive import NaiveIndex
from repro.index.rist import RistIndex
from repro.index.verification import _compare, query_needs_raw_values
from repro.index.vist import VistIndex
from repro.query.ast import QueryNode
from repro.query.xpath import parse_xpath
from repro.sequence.transform import SequenceEncoder
from repro.storage.docstore import MemoryDocStore

ALL_KINDS = [NaiveIndex, RistIndex, VistIndex, PathIndex, XissIndex, ApexIndex]


def book(year: str, price: str) -> XmlNode:
    root = XmlNode("book")
    root.element("year", text=year)
    root.element("price", text=price)
    return root


class TestParsing:
    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_ops_parse(self, op):
        root = parse_xpath(f"/book/year[text(){op}'1999']")
        year = root.children[0]
        assert year.op == op
        assert year.value == "1999"

    def test_branch_inequality(self):
        root = parse_xpath("/book[year>'1999']/price")
        year = root.children[0]
        assert year.op == ">"
        assert year.predicate

    def test_to_xpath_roundtrip(self):
        root = parse_xpath("/book[year>='1999']")
        assert parse_xpath(root.to_xpath()) == root

    def test_invalid_op_rejected_in_ast(self):
        with pytest.raises(QueryError):
            QueryNode("a", value="x", op="~")

    def test_needs_raw_detection(self):
        assert query_needs_raw_values(parse_xpath("/a[b>'1']"))
        assert not query_needs_raw_values(parse_xpath("/a[b='1']"))


class TestCompare:
    def test_numeric_when_both_numeric(self):
        assert _compare("10", ">", "9")  # numeric, not lexicographic
        assert not _compare("10", "<", "9")
        assert _compare("9.5", "<=", "9.50")

    def test_string_fallback(self):
        assert _compare("banana", ">", "apple")
        assert _compare("a", "!=", "b")

    def test_equality_both_modes(self):
        assert _compare("007", "=", "7")  # numeric equality
        assert _compare("x", "=", "x")
        assert not _compare("x", "=", "y")


@pytest.fixture(params=ALL_KINDS, ids=lambda c: c.__name__)
def library(request):
    index = request.param(SequenceEncoder(), source_store=MemoryDocStore())
    ids = {
        "old": index.add(book("1988", "10.00")),
        "mid": index.add(book("1999", "25.00")),
        "new": index.add(book("2003", "25.00")),
    }
    return index, ids


class TestRangeQueries:
    def test_greater_than(self, library):
        index, ids = library
        assert index.query("/book[year>'1999']") == [ids["new"]]

    def test_greater_equal(self, library):
        index, ids = library
        got = index.query("/book[year>='1999']")
        assert got == sorted([ids["mid"], ids["new"]])

    def test_less_than(self, library):
        index, ids = library
        assert index.query("/book[year<'1999']") == [ids["old"]]

    def test_not_equal(self, library):
        index, ids = library
        got = index.query("/book[year!='1999']")
        assert got == sorted([ids["old"], ids["new"]])

    def test_combined_with_equality(self, library):
        index, ids = library
        got = index.query("/book[year>'1990'][price='25.00']")
        assert got == sorted([ids["mid"], ids["new"]])

    def test_numeric_comparison_of_prices(self, library):
        index, ids = library
        got = index.query("/book[price<'11']")
        assert got == [ids["old"]]  # 10.00 < 11 numerically, not "1..." < "11"

    def test_on_result_step(self, library):
        index, ids = library
        got = index.query("/book/year[text()>='2000']")
        assert got == [ids["new"]]

    def test_query_nodes_with_ranges(self, library):
        index, ids = library
        result = index.query_nodes("/book/year[text()>'1990']")
        assert set(result) == {ids["mid"], ids["new"]}
        for positions in result.values():
            assert len(positions) == 1


class TestWithoutSourceStore:
    def test_range_query_raises_helpfully(self):
        index = VistIndex(SequenceEncoder())
        index.add(book("1999", "5.00"))
        with pytest.raises(IndexStateError, match="source_store"):
            index.query("/book[year>'1990']")

    def test_equality_still_fine(self):
        index = VistIndex(SequenceEncoder())
        doc_id = index.add(book("1999", "5.00"))
        assert index.query("/book[year='1999']") == [doc_id]
