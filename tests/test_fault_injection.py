"""Crash-consistency: exhaustive fault sweep over the WalPager redo protocol.

``sweep_commit_faults`` crashes one commit at every write/fsync boundary
(plus torn-write variants) and asserts recovery always lands on exactly
the pre- or post-commit state.  The op-count assertion (``2E + 6`` for a
commit with ``E`` journal entries) proves the sweep covers *every*
durability primitive the commit executes — a new write added to the
protocol without fault coverage fails the suite.
"""

import pytest

from repro.doc.model import XmlNode
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from repro.storage.bptree import BPlusTree
from repro.storage.wal import WalPager
from repro.testing.faults import (
    CrashingWalPager,
    SimulatedCrash,
    sweep_commit_faults,
)
from repro.testing.generator import DocQueryGenerator
from repro.testing.invariants import check_bptree, check_vist_scopes

PAGE = 512


def key(i: int) -> bytes:
    return f"k{i:05d}".encode()


def tree_setup(pager: WalPager) -> None:
    tree = BPlusTree(pager)
    for i in range(40):
        tree.insert(key(i), str(i).encode() * 3)
    tree.flush()


def tree_mutate(pager: WalPager) -> None:
    tree = BPlusTree(pager)
    for i in range(40, 52):
        tree.insert(key(i), str(i).encode() * 3)
    tree.flush()


def tree_check(pager: WalPager, phase: str) -> None:
    report = check_bptree(BPlusTree(pager))
    assert report.ok, report.summary()


class TestBPlusTreeSweep:
    def test_sweep_every_boundary(self, tmp_path):
        report = sweep_commit_faults(
            tmp_path / "t.db",
            tree_setup,
            tree_mutate,
            page_size=PAGE,
            check=tree_check,
        )
        # exhaustiveness: the op log is exactly the documented protocol
        assert report.total_ops == report.expected_ops == 2 * report.entries + 6
        kinds = [kind[0] for kind in report.op_kinds]
        assert kinds.count("journal_write") == report.entries + 3
        assert kinds.count("main_write") == report.entries
        assert kinds.count("journal_sync") == 1
        assert kinds.count("main_sync") == 1
        assert kinds.count("journal_unlink") == 1
        # every op got a cut fault; every write op additionally a torn one
        writes = sum(1 for k in kinds if k in ("journal_write", "main_write"))
        assert report.faults_injected == report.total_ops + writes
        # both recovery targets were exercised
        landed = {outcome.recovered_to for outcome in report.outcomes}
        assert landed == {"pre", "post"}
        # the atomicity frontier is the journal fsync, exactly
        sync_op = report.op_kinds.index(("journal_sync",))
        for outcome in report.outcomes:
            expected = "pre" if outcome.op < sync_op else "post"
            assert outcome.recovered_to == expected

    def test_noop_mutation_rejected(self, tmp_path):
        with pytest.raises(AssertionError, match="must change durable state"):
            sweep_commit_faults(
                tmp_path / "t.db",
                tree_setup,
                lambda pager: None,
                page_size=PAGE,
            )

    def test_unarmed_pager_commits_normally(self, tmp_path):
        path = tmp_path / "t.db"
        pager = CrashingWalPager(path, PAGE, crash_at=0, torn=True)
        tree = BPlusTree(pager)
        tree.insert(b"a", b"1")
        tree.flush()
        pager.commit()  # never armed: the fault must not fire
        pager.close()
        reopened = WalPager(path, PAGE)
        try:
            assert BPlusTree(reopened).get(b"a") == b"1"
        finally:
            reopened.close()

    def test_armed_crash_raises_and_recovery_restores(self, tmp_path):
        path = tmp_path / "t.db"
        pager = CrashingWalPager(path, PAGE)
        tree_setup(pager)
        pager.close()

        pager = CrashingWalPager(path, PAGE, crash_at=0, torn=False)
        tree_mutate(pager)
        pager.arm()
        with pytest.raises(SimulatedCrash):
            pager.commit()
        pager.abandon()
        recovered = WalPager(path, PAGE)
        try:
            tree = BPlusTree(recovered)
            assert tree.get(key(39)) is not None  # pre-state intact
            assert tree.get(key(40)) is None  # mutation discarded
        finally:
            recovered.close()


class TestVistSweep:
    """The same sweep with a live ViST index writing through the pager."""

    documents = DocQueryGenerator(11).corpus(6, 8)

    def _index(self, pager: WalPager) -> VistIndex:
        return VistIndex(SequenceEncoder(), pager=pager, posting_cache_size=0)

    def vist_setup(self, pager: WalPager) -> None:
        index = self._index(pager)
        index.add_all(self.documents[:4])
        index.tree.flush()
        index.docid_tree.flush()

    def vist_mutate(self, pager: WalPager) -> None:
        index = self._index(pager)
        index.add_all(self.documents[4:])
        # flush the trees into the pager overlay WITHOUT committing —
        # the sweep harness owns the commit under test
        index.tree.flush()
        index.docid_tree.flush()

    def vist_check(self, pager: WalPager, phase: str) -> None:
        index = self._index(pager)
        for report in (
            check_bptree(index.tree, "combined"),
            check_bptree(index.docid_tree, "docid"),
            check_vist_scopes(index),
        ):
            assert report.ok, f"after recovery to {phase}: {report.summary()}"

    def test_vist_commit_sweep(self, tmp_path):
        # ViST node cells carry labelling state and need room: the
        # 512-byte page of the B+Tree sweep is below its per-cell budget
        report = sweep_commit_faults(
            tmp_path / "vist.db",
            self.vist_setup,
            self.vist_mutate,
            page_size=2048,
            check=self.vist_check,
        )
        assert report.total_ops == report.expected_ops
        assert report.entries >= 2  # a real multi-page transaction


@pytest.mark.slow
class TestLargeSweep:
    def test_wide_transaction_sweep(self, tmp_path):
        def setup(pager: WalPager) -> None:
            tree = BPlusTree(pager)
            for i in range(300):
                tree.insert(key(i), str(i).encode() * 5)
            tree.flush()

        def mutate(pager: WalPager) -> None:
            tree = BPlusTree(pager)
            for i in range(300, 380):
                tree.insert(key(i), str(i).encode() * 5)
            for i in range(0, 60, 2):
                tree.delete(key(i))
            tree.flush()

        report = sweep_commit_faults(
            tmp_path / "big.db", setup, mutate, page_size=PAGE, check=tree_check
        )
        assert report.total_ops == report.expected_ops
        assert report.entries > 10
