"""Tests for the tree-embedding verifier and ViST's known false positives."""

import random

import pytest

from repro.doc.model import XmlNode
from repro.index.naive import NaiveIndex
from repro.index.rist import RistIndex
from repro.index.verification import rebuild_tree, verify_document
from repro.index.vist import VistIndex
from repro.query.xpath import parse_xpath
from repro.sequence.transform import SequenceEncoder
from repro.sequence.vocabulary import ValueHasher


def encode(node: XmlNode):
    return SequenceEncoder().encode_node(node)


def check(doc: XmlNode, expr: str) -> bool:
    return verify_document(encode(doc), parse_xpath(expr), ValueHasher())


class TestRebuildTree:
    def test_roundtrip_structure(self):
        root = XmlNode("a")
        root.element("b", text="v1")
        root.element("c").element("d")
        tree = rebuild_tree(encode(root))
        (a,) = tree.children
        assert a.symbol == "a"
        labels = sorted(
            c.symbol for c in a.children if not c.is_value
        )
        assert labels == ["b", "c"]

    def test_value_leaves_are_hashes(self):
        root = XmlNode("a", text="hello")
        tree = rebuild_tree(encode(root))
        (a,) = tree.children
        (leaf,) = a.children
        assert leaf.is_value
        assert leaf.symbol == ValueHasher()("hello")


class TestVerifier:
    def make_doc(self) -> XmlNode:
        a = XmlNode("A")
        b1 = a.element("B")
        b1.element("C", text="x")
        b2 = a.element("B")
        b2.element("D")
        return a

    def test_simple_path(self):
        assert check(self.make_doc(), "/A/B/C")
        assert not check(self.make_doc(), "/A/C")

    def test_value_predicate(self):
        assert check(self.make_doc(), "/A/B/C[text='x']")
        assert not check(self.make_doc(), "/A/B/C[text='y']")

    def test_star(self):
        assert check(self.make_doc(), "/A/*/C")
        assert check(self.make_doc(), "/*/B")
        assert not check(self.make_doc(), "/A/*/*/C")

    def test_dslash(self):
        assert check(self.make_doc(), "//C")
        assert check(self.make_doc(), "/A//C")
        assert check(self.make_doc(), "//B/D")
        assert not check(self.make_doc(), "//E")

    def test_branches(self):
        assert check(self.make_doc(), "/A[B/C]/B/D")
        assert not check(self.make_doc(), "/A[B/E]/B/D")

    def test_branches_may_share_a_data_node(self):
        # XPath semantics: /A[B][B/C] is satisfied by a single B with C.
        a = XmlNode("A")
        a.element("B").element("C")
        assert check(a, "/A[B][B/C]")

    def test_root_label_must_match(self):
        assert not check(self.make_doc(), "/X/B")


class TestKnownFalsePositives:
    """The soundness caveat: raw ViST matching vs verified results."""

    def adversarial_doc(self) -> XmlNode:
        """/A[B[C]/D] should NOT match: C and D live under different Bs."""
        a = XmlNode("A")
        a.element("B").element("C")
        a.element("B").element("D")
        return a

    def true_doc(self) -> XmlNode:
        a = XmlNode("A")
        b = a.element("B")
        b.element("C")
        b.element("D")
        return a

    @pytest.mark.parametrize("factory", [NaiveIndex, RistIndex, VistIndex])
    def test_same_prefix_branch_false_positive(self, factory):
        index = factory(SequenceEncoder())
        fp = index.add(self.adversarial_doc())
        tp = index.add(self.true_doc())
        raw = index.query("/A/B[C][D]")
        verified = index.query("/A/B[C][D]", verify=True)
        # raw ViST accepts both (the documented false positive) ...
        assert fp in raw and tp in raw
        # ... verification keeps only the genuine match
        assert verified == [tp]

    def test_verifier_rejects_adversarial_doc_directly(self):
        assert not check(self.adversarial_doc(), "/A/B[C][D]")
        assert check(self.true_doc(), "/A/B[C][D]")

    def test_q5_false_negative_fixed_in_exact_mode(self):
        """/A[B/C]/B/D with a single B carrying both C and D: raw ViST
        misses it (needs two (B,A) items), exact mode recovers it by
        matching the relaxed query and verifying."""
        both = XmlNode("A")
        b = both.element("B")
        b.element("C")
        b.element("D")
        index = VistIndex(SequenceEncoder())
        doc_id = index.add(both)
        assert index.query("/A[B/C]/B/D") == []  # paper semantics: lost
        assert index.query("/A[B/C]/B/D", verify=True) == [doc_id]  # exact

    def test_exact_mode_same_label_branches_no_spurious_answers(self):
        only_c = XmlNode("A")
        only_c.element("B").element("C")
        index = VistIndex(SequenceEncoder())
        index.add(only_c)
        assert index.query("/A[B/C]/B/D", verify=True) == []


class TestRandomizedConsistency:
    """All indexes agree with each other; verified mode equals ground truth."""

    LABELS = ["a", "b", "c"]
    VALUES = ["x", "y"]

    def random_doc(self, rng: random.Random) -> XmlNode:
        root = XmlNode("r")
        nodes = [root]
        for _ in range(rng.randint(1, 8)):
            parent = rng.choice(nodes)
            child = parent.element(rng.choice(self.LABELS))
            if rng.random() < 0.5:
                child.text = rng.choice(self.VALUES)
            nodes.append(child)
        return root

    QUERIES = [
        "/r/a",
        "/r/a/b",
        "/r[a]/b",
        "/r//c",
        "/r/*/b",
        "//b[text='x']",
        "/r/a[text='y']",
        "/r[a/b]/c",
    ]

    def test_indexes_agree_and_verified_matches_ground_truth(self):
        rng = random.Random(42)
        docs = [self.random_doc(rng) for _ in range(40)]
        encoder = SequenceEncoder()
        hasher = encoder.hasher
        indexes = {
            "naive": NaiveIndex(SequenceEncoder()),
            "rist": RistIndex(SequenceEncoder()),
            "vist": VistIndex(SequenceEncoder()),
        }
        for doc in docs:
            for index in indexes.values():
                index.add(doc)
        for expr in self.QUERIES:
            raw = {name: idx.query(expr) for name, idx in indexes.items()}
            assert raw["naive"] == raw["rist"] == raw["vist"], expr
            truth = sorted(
                i
                for i, doc in enumerate(docs)
                if verify_document(encoder.encode_node(doc), parse_xpath(expr), hasher)
            )
            verified = indexes["vist"].query(expr, verify=True)
            assert verified == truth, expr
            # raw results are a superset of the truth (no false negatives
            # for these queries, which avoid the same-label-branch case)
            assert set(truth) <= set(raw["vist"]), expr
