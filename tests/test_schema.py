"""Tests for schemas, DTD parsing and corpus statistics."""

import pytest

from repro.doc.model import XmlDocument, XmlNode
from repro.doc.schema import ChildSpec, Occurs, Schema
from repro.doc.stats import CorpusStats
from repro.errors import SchemaError

PURCHASE_DTD = """
<!ELEMENT purchases (purchase*)>
<!ELEMENT purchase  (seller, buyer)>
<!ELEMENT seller    (item*)>
<!ATTLIST seller    ID ID  location CDATA  name CDATA>
<!ELEMENT buyer     (item*)>
<!ATTLIST buyer     ID ID  location CDATA  name CDATA>
<!ELEMENT item      (item*)>
<!ATTLIST item      name CDATA  manufacturer CDATA>
"""


class TestSchemaConstruction:
    def test_element_and_lookup(self):
        s = Schema("root")
        s.element("root", [ChildSpec("a"), ChildSpec("b", Occurs.MANY)])
        decl = s.require("root")
        assert decl.child("a").occurs == Occurs.ONE
        assert decl.child("b").repeatable
        assert s.get("missing") is None
        with pytest.raises(SchemaError):
            s.require("missing")

    def test_duplicate_child_rejected(self):
        s = Schema("r")
        with pytest.raises(SchemaError):
            s.element("r", [ChildSpec("a"), ChildSpec("a")])

    def test_prob_defaults_follow_cardinality(self):
        assert ChildSpec("x", Occurs.ONE).prob == 1.0
        assert ChildSpec("x", Occurs.OPT).prob == 0.5
        assert ChildSpec("x", Occurs.PLUS).prob == 1.0

    def test_prob_validation(self):
        with pytest.raises(SchemaError):
            ChildSpec("x", prob=1.5)
        with pytest.raises(SchemaError):
            ChildSpec("x", mean_repeats=0.5)

    def test_repeat_continue_prob(self):
        spec = ChildSpec("x", Occurs.MANY, mean_repeats=4.0)
        assert spec.repeat_continue_prob() == pytest.approx(0.75)
        assert ChildSpec("y").repeat_continue_prob() == 0.0


class TestSiblingOrder:
    def test_declared_children_sort_by_declaration(self):
        s = Schema("r")
        s.element("r", [ChildSpec("z"), ChildSpec("a")])
        assert s.sibling_position("r", "z") < s.sibling_position("r", "a")

    def test_undeclared_children_sort_lexicographically_after(self):
        s = Schema("r")
        s.element("r", [ChildSpec("z")])
        assert s.sibling_position("r", "z") < s.sibling_position("r", "aaa")
        assert s.sibling_position("r", "aaa") < s.sibling_position("r", "bbb")

    def test_unknown_parent(self):
        s = Schema("r")
        assert s.sibling_position("ghost", "a") < s.sibling_position("ghost", "b")


class TestDtdParsing:
    def test_paper_figure1(self):
        s = Schema.from_dtd(PURCHASE_DTD)
        assert s.root == "purchases"
        purchase = s.require("purchase")
        assert [c.name for c in purchase.children] == ["seller", "buyer"]
        seller = s.require("seller")
        # attributes come first, then sub-elements
        assert [c.name for c in seller.children] == ["ID", "location", "name", "item"]
        assert seller.child("item").occurs == Occurs.MANY
        assert seller.child("ID").is_attribute

    def test_occurrence_suffixes(self):
        s = Schema.from_dtd("<!ELEMENT a (b?, c+, d*)>\n<!ELEMENT b EMPTY>")
        a = s.require("a")
        assert a.child("b").occurs == Occurs.OPT
        assert a.child("c").occurs == Occurs.PLUS
        assert a.child("d").occurs == Occurs.MANY

    def test_pcdata(self):
        s = Schema.from_dtd("<!ELEMENT title (#PCDATA)>")
        assert s.require("title").has_text
        assert not s.require("title").children

    def test_choice_children_become_optional(self):
        s = Schema.from_dtd("<!ELEMENT a (b | c)>\n<!ELEMENT b EMPTY>\n<!ELEMENT c EMPTY>")
        a = s.require("a")
        assert a.child("b").occurs == Occurs.OPT
        assert a.child("c").occurs == Occurs.OPT

    def test_outer_star_distributes(self):
        s = Schema.from_dtd("<!ELEMENT a (b)*>")
        assert s.require("a").child("b").occurs == Occurs.MANY

    def test_explicit_root(self):
        s = Schema.from_dtd(PURCHASE_DTD, root="purchase")
        assert s.root == "purchase"

    def test_empty_dtd_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_dtd("just text")

    def test_occurrence_prob_lookup(self):
        s = Schema.from_dtd(PURCHASE_DTD)
        assert s.occurrence_prob("purchase", "seller") == 1.0
        assert 0 < s.occurrence_prob("seller", "item") < 1.0
        assert s.occurrence_prob("nowhere", "x") == 0.5  # default


class TestCorpusStats:
    def make_doc(self) -> XmlDocument:
        root = XmlNode("purchase")
        seller = root.element("seller", ID="s1")
        seller.element("item").element("name", text="cpu")
        seller.element("item").element("name", text="disk")
        return XmlDocument(root)

    def test_observe_counts(self):
        stats = CorpusStats()
        stats.observe(self.make_doc())
        assert stats.documents == 1
        assert stats.nodes > 5
        assert stats.max_depth >= 4

    def test_expected_fanout(self):
        stats = CorpusStats()
        stats.observe(self.make_doc())
        assert stats.expected_fanout("seller") == pytest.approx(3.0)  # ID + 2 items
        assert stats.expected_fanout("unseen", default=7.0) == 7.0

    def test_distinct_values(self):
        stats = CorpusStats()
        stats.observe(self.make_doc())
        assert stats.distinct_values("name") == 2
        assert stats.distinct_values("unseen", default=9) == 9

    def test_mean_nodes(self):
        stats = CorpusStats()
        assert stats.mean_nodes_per_document() == 0.0
        stats.observe(self.make_doc())
        stats.observe(self.make_doc())
        assert stats.mean_nodes_per_document() == stats.nodes / 2

    def test_labels_listing(self):
        stats = CorpusStats()
        stats.observe(self.make_doc())
        assert "seller" in stats.labels()
        assert "item" in stats.labels()
