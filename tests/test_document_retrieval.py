"""Tests for source storage, document retrieval and docstore compaction."""

import pytest

from repro.doc.model import XmlNode
from repro.errors import IndexStateError, StorageError
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from repro.storage.docstore import FileDocStore, MemoryDocStore


def sample_doc(tag_text: str) -> XmlNode:
    root = XmlNode("purchase")
    root.element("seller", text=tag_text, location="boston")
    return root


class TestSourceStore:
    def make_index(self) -> VistIndex:
        return VistIndex(SequenceEncoder(), source_store=MemoryDocStore())

    def test_get_document_roundtrip(self):
        index = self.make_index()
        doc_id = index.add(sample_doc("acme & sons"))
        restored = index.get_document(doc_id)
        assert restored.root == sample_doc("acme & sons")

    def test_get_document_without_source_store(self):
        index = VistIndex(SequenceEncoder())
        doc_id = index.add(sample_doc("x"))
        with pytest.raises(IndexStateError):
            index.get_document(doc_id)

    def test_remove_drops_source(self):
        index = self.make_index()
        doc_id = index.add(sample_doc("gone"))
        index.remove(doc_id)
        with pytest.raises(StorageError):
            index.get_document(doc_id)

    def test_query_then_materialise(self):
        index = self.make_index()
        hit = index.add(sample_doc("target"))
        index.add(sample_doc("other"))
        (result,) = index.query("/purchase/seller[text='target']")
        assert result == hit
        assert "target" in index.get_document(result).to_xml()

    def test_source_store_persists(self, tmp_path):
        store = FileDocStore(tmp_path / "sources.dat")
        index = VistIndex(SequenceEncoder(), source_store=store)
        doc_id = index.add(sample_doc("persisted"))
        store.close()
        reopened = FileDocStore(tmp_path / "sources.dat")
        assert b"persisted" in reopened.get(doc_id)
        reopened.close()

    def test_diverged_stores_detected(self):
        rogue = MemoryDocStore()
        rogue.add(b"already occupied")
        index = VistIndex(SequenceEncoder(), source_store=rogue)
        with pytest.raises(IndexStateError):
            index.add(sample_doc("x"))


class TestCompaction:
    def test_compact_reclaims_space(self, tmp_path):
        store = FileDocStore(tmp_path / "docs.dat")
        big = b"z" * 2000
        ids = [store.add(big) for _ in range(10)]
        for doc_id in ids[:8]:
            store.remove(doc_id)
        saved = store.compact()
        assert saved > 8 * 1900
        # survivors intact, ids stable
        for doc_id in ids[8:]:
            assert store.get(doc_id) == big
        for doc_id in ids[:8]:
            assert doc_id not in store

    def test_compact_survives_reopen(self, tmp_path):
        path = tmp_path / "docs.dat"
        store = FileDocStore(path)
        a = store.add(b"first record")
        b = store.add(b"second record")
        store.remove(a)
        store.compact()
        c = store.add(b"third record")
        store.close()

        reopened = FileDocStore(path)
        assert reopened.get(b) == b"second record"
        assert reopened.get(c) == b"third record"
        assert a not in reopened
        assert len(reopened) == 2
        reopened.close()

    def test_compact_empty_store(self, tmp_path):
        store = FileDocStore(tmp_path / "docs.dat")
        assert store.compact() == 0
        store.close()

    def test_compact_idempotent(self, tmp_path):
        store = FileDocStore(tmp_path / "docs.dat")
        store.add(b"payload")
        first = store.compact()
        second = store.compact()
        assert first == 0 and second == 0
        store.close()


class TestCliShowXml:
    def test_show_xml_prints_documents(self, tmp_path, capsys):
        from repro.cli import main

        xml = tmp_path / "p.xml"
        xml.write_text("<purchase><seller location='boston'>acme</seller></purchase>")
        db = str(tmp_path / "db")
        main(["index", db, str(xml)])
        capsys.readouterr()
        main(["query", db, "/purchase/seller", "--show-xml"])
        out = capsys.readouterr().out
        assert "<purchase>" in out
        assert "acme" in out
