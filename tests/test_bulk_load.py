"""Tests for bottom-up B+Tree bulk loading."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.bptree import BPlusTree
from repro.storage.pager import MemoryPager


def make_tree(page_size=256):
    return BPlusTree(MemoryPager(page_size=page_size))


def pairs(n):
    return [(f"k{i:06d}".encode(), f"v{i}".encode()) for i in range(n)]


class TestBulkLoad:
    def test_roundtrip(self):
        tree = make_tree()
        data = pairs(1000)
        assert tree.bulk_load(data) == 1000
        assert len(tree) == 1000
        assert list(tree.items()) == data
        assert tree.get(b"k000500") == b"v500"

    def test_empty_input(self):
        tree = make_tree()
        assert tree.bulk_load([]) == 0
        assert list(tree.items()) == []
        tree.insert(b"later", b"works")
        assert tree.get(b"later") == b"works"

    def test_single_entry(self):
        tree = make_tree()
        tree.bulk_load([(b"only", b"one")])
        assert list(tree.items()) == [(b"only", b"one")]

    def test_equivalent_to_inserts(self):
        loaded = make_tree(page_size=128)
        inserted = make_tree(page_size=128)
        data = pairs(500)
        loaded.bulk_load(data)
        shuffled = list(data)
        random.Random(5).shuffle(shuffled)
        for k, v in shuffled:
            inserted.insert(k, v)
        assert list(loaded.items()) == list(inserted.items())
        assert loaded.stats().entries == inserted.stats().entries

    def test_denser_than_incremental(self):
        loaded = make_tree(page_size=128)
        inserted = make_tree(page_size=128)
        data = pairs(800)
        loaded.bulk_load(data)
        for k, v in data:
            inserted.insert(k, v)
        assert loaded.stats().total_pages <= inserted.stats().total_pages

    def test_range_scans_work(self):
        tree = make_tree(page_size=128)
        data = pairs(600)
        tree.bulk_load(data)
        got = [k for k, _ in tree.range(b"k000100", b"k000200")]
        assert got == [k for k, _ in data[100:200]]

    def test_mutations_after_bulk_load(self):
        tree = make_tree(page_size=128)
        tree.bulk_load(pairs(300))
        tree.insert(b"k000150x", b"new")
        assert tree.delete(b"k000200") == 1
        assert tree.get(b"k000150x") == b"new"
        assert tree.get(b"k000200") is None
        assert len(tree) == 300

    def test_rejects_non_empty_tree(self):
        tree = make_tree()
        tree.insert(b"a", b"b")
        with pytest.raises(StorageError):
            tree.bulk_load(pairs(5))

    def test_rejects_unsorted_input(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.bulk_load([(b"b", b""), (b"a", b"")])

    def test_rejects_exact_duplicates(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.bulk_load([(b"a", b"v"), (b"a", b"v")])

    def test_duplicate_keys_distinct_values_ok(self):
        tree = make_tree()
        tree.bulk_load([(b"k", b"v1"), (b"k", b"v2"), (b"k", b"v3")])
        assert list(tree.values(b"k")) == [b"v1", b"v2", b"v3"]

    def test_fill_fraction_validation(self):
        tree = make_tree()
        with pytest.raises(StorageError):
            tree.bulk_load(pairs(5), fill_fraction=0.01)

    def test_accepts_generator_input(self):
        tree = make_tree()
        tree.bulk_load(iter(pairs(100)))
        assert len(tree) == 100

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=200, unique=True)
    )
    def test_property_matches_reference(self, keys):
        tree = make_tree(page_size=128)
        data = sorted((k, b"") for k in keys)
        tree.bulk_load(data)
        assert list(tree.items()) == data
        lo, hi = min(keys), max(keys)
        assert [k for k, _ in tree.range(lo, hi, include_hi=True)] == sorted(keys)


class TestRistUsesBulkLoad:
    def test_finalize_results_unchanged(self):
        from repro.index.rist import RistIndex
        from repro.sequence.transform import SequenceEncoder
        from tests.conftest import build_figure3_record, build_record

        index = RistIndex(SequenceEncoder())
        ids = [
            index.add(build_figure3_record()),
            index.add(build_record("boston", "newyork", ["intel"])),
        ]
        assert index.query("/P") == sorted(ids)
        assert index.query("/P//I[M='intel']") == [ids[1]]
