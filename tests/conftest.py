"""Shared fixtures: the paper's running example and index factories."""

import pytest

from repro.doc.model import XmlNode
from repro.doc.schema import ChildSpec, Occurs, Schema
from repro.index.naive import NaiveIndex
from repro.index.rist import RistIndex
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder


def build_purchase_schema() -> Schema:
    """One-letter schema matching paper Figures 3-5."""
    schema = Schema("P")
    schema.element("P", [ChildSpec("S"), ChildSpec("B")])
    schema.element("S", [ChildSpec("N"), ChildSpec("I", Occurs.MANY), ChildSpec("L")])
    schema.element("B", [ChildSpec("L"), ChildSpec("N")])
    schema.element("I", [ChildSpec("M"), ChildSpec("N"), ChildSpec("I", Occurs.MANY)])
    schema.element("N", has_text=True, value_cardinality=64)
    schema.element("L", has_text=True, value_cardinality=64)
    schema.element("M", has_text=True, value_cardinality=64)
    return schema


def build_figure3_record() -> XmlNode:
    """The purchase record of paper Figure 3."""
    p = XmlNode("P")
    s = p.element("S")
    s.element("N", text="dell")
    i1 = s.element("I")
    i1.element("M", text="ibm")
    i1.element("N", text="part#1")
    i2 = i1.element("I")
    i2.element("M", text="part#2")
    s.element("I").element("N", text="intel")
    s.element("L", text="boston")
    b = p.element("B")
    b.element("L", text="newyork")
    b.element("N", text="panasia")
    return p


def build_record(seller_loc: str, buyer_loc: str, manufacturers: list[str]) -> XmlNode:
    """A purchase record with configurable locations and item makers."""
    p = XmlNode("P")
    s = p.element("S")
    s.element("N", text=f"seller-of-{seller_loc}")
    for maker in manufacturers:
        item = s.element("I")
        item.element("M", text=maker)
    s.element("L", text=seller_loc)
    b = p.element("B")
    b.element("L", text=buyer_loc)
    b.element("N", text=f"buyer-of-{buyer_loc}")
    return p


INDEX_FACTORIES = {
    "naive": lambda encoder: NaiveIndex(encoder),
    "rist": lambda encoder: RistIndex(encoder),
    "vist": lambda encoder: VistIndex(encoder),
}


@pytest.fixture
def purchase_schema():
    return build_purchase_schema()


@pytest.fixture
def purchase_encoder(purchase_schema):
    return SequenceEncoder(schema=purchase_schema)


@pytest.fixture(params=sorted(INDEX_FACTORIES))
def any_index(request, purchase_encoder):
    """Each paper index, loaded with the same small purchase corpus."""
    index = INDEX_FACTORIES[request.param](purchase_encoder)
    return index
