"""Tests for the sequence trie and its static (RIST) labelling."""

from repro.index.trie import SequenceTrie
from repro.sequence.encoding import Item, StructureEncodedSequence


def seq(*pairs):
    return StructureEncodedSequence([Item(sym, tuple(prefix)) for sym, prefix in pairs])


def figure5_doc1():
    """Doc1 of paper Figure 5."""
    return seq(
        ("P", ()),
        ("S", ("P",)),
        ("N", ("P", "S")),
        (101, ("P", "S", "N")),  # v1
        ("L", ("P", "S")),
        (102, ("P", "S", "L")),  # v2
    )


def figure5_doc2():
    """Doc2 of paper Figure 5."""
    return seq(
        ("P", ()),
        ("B", ("P",)),
        ("L", ("P", "B")),
        (102, ("P", "B", "L")),  # v2
    )


class TestInsertion:
    def test_shared_prefix(self):
        trie = SequenceTrie()
        trie.insert(figure5_doc1(), 1)
        trie.insert(figure5_doc2(), 2)
        # Figure 5's tree has 9 nodes (root excluded => 9 labelled nodes
        # below the root: P,S,N,v1,L,v2 and B,L,v2).
        assert trie.node_count == 9
        # (P,) is shared: the root has exactly one child
        assert len(trie.root.children) == 1

    def test_doc_ids_attach_at_final_node(self):
        trie = SequenceTrie()
        end1 = trie.insert(figure5_doc1(), 1)
        end2 = trie.insert(figure5_doc2(), 2)
        assert end1.doc_ids == [1]
        assert end2.doc_ids == [2]
        assert end1 is not end2

    def test_same_sequence_shares_all_nodes(self):
        trie = SequenceTrie()
        end1 = trie.insert(figure5_doc1(), 1)
        end2 = trie.insert(figure5_doc1(), 2)
        assert end1 is end2
        assert end1.doc_ids == [1, 2]
        assert trie.node_count == 6

    def test_max_depth_tracking(self):
        trie = SequenceTrie()
        trie.insert(figure5_doc1(), 1)
        assert trie.max_depth == 3  # (v1, PSN)


class TestStaticLabels:
    def test_figure5_labels(self):
        """Reproduce the <n, size> labels of paper Figure 5 exactly."""
        trie = SequenceTrie()
        trie.insert(figure5_doc1(), 1)
        trie.insert(figure5_doc2(), 2)
        total = trie.assign_static_labels()
        assert total == 10  # 9 nodes + root
        labels = {}
        for node in trie.nodes():
            key = (node.item.symbol, node.item.prefix)
            labels[key] = (node.scope.n, node.scope.size)
        assert labels[("P", ())] == (1, 8)
        assert labels[("S", ("P",))] == (2, 4)
        assert labels[("N", ("P", "S"))] == (3, 3)
        assert labels[(101, ("P", "S", "N"))] == (4, 2)
        assert labels[("L", ("P", "S"))] == (5, 1)
        assert labels[(102, ("P", "S", "L"))] == (6, 0)
        assert labels[("B", ("P",))] == (7, 2)
        assert labels[("L", ("P", "B"))] == (8, 1)
        assert labels[(102, ("P", "B", "L"))] == (9, 0)

    def test_root_scope_covers_everything(self):
        trie = SequenceTrie()
        trie.insert(figure5_doc1(), 1)
        trie.insert(figure5_doc2(), 2)
        trie.assign_static_labels()
        root = trie.root.scope
        for node in trie.nodes():
            assert root.covers(node.scope)

    def test_descendant_scopes_nest(self):
        trie = SequenceTrie()
        trie.insert(figure5_doc1(), 1)
        trie.insert(figure5_doc2(), 2)
        trie.assign_static_labels()

        def check(node):
            for child in node.children.values():
                assert node.scope.covers(child.scope)
                check(child)

        check(trie.root)

    def test_preorder_numbering_is_dense(self):
        trie = SequenceTrie()
        trie.insert(figure5_doc1(), 1)
        trie.insert(figure5_doc2(), 2)
        trie.assign_static_labels()
        ids = sorted(node.scope.n for node in trie.nodes())
        assert ids == list(range(1, 10))
