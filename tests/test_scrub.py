"""Corruption defense: bit-flip fuzzing of scrub / query / salvage.

The central promise of the checksum layer is *no silent wrongness*: any
single flipped byte in the page file must be (a) found by ``scrub`` and
(b) unable to change a query answer — a query either returns the correct
result (possibly through the degraded docstore path) or raises a
:class:`~repro.errors.CorruptionError`.  ``salvage`` must then rebuild
an invariant-clean index from the intact document store.

A seed sweep drives this end to end: one pristine database is built
once, each seed copies it, flips one random byte of ``vist.db`` and runs
the full detect / answer / salvage cycle.  The first few seeds run in
tier-1; the rest carry the ``slow`` marker (the CI corruption job runs
all 100 with ``-m slow``).

The pager error-parity test rides along: Memory/File/Wal pagers must
fail identically (same exception type, same key phrase) for the three
misuse classes, so storage-layer callers can be pager-agnostic.
"""

from __future__ import annotations

import random
import shutil
from pathlib import Path

import pytest

from repro.cli import open_index
from repro.doc.parser import parse_document
from repro.errors import CorruptionError, PageError
from repro.repair import salvage_db, scrub_db, scrub_page_file, scrub_record_file
from repro.storage.pager import DEFAULT_PAGE_SIZE, FilePager, MemoryPager
from repro.storage.wal import WalPager
from repro.testing.invariants import assert_invariants

FAST_SEEDS = 8
TOTAL_SEEDS = 100

QUERIES = [
    "/site//item[location='US']",
    "/site/item/name",
    "//item[location='EU'][name]",
    "/*",
]


def _corpus() -> list[str]:
    docs = []
    for i in range(14):
        loc = ["US", "EU", "JP"][i % 3]
        extra = f"<note>n{i}</note>" if i % 2 else ""
        docs.append(
            f"<site><item><location>{loc}</location>"
            f"<name>vendor{i}</name>{extra}</item>"
            f"<item><location>US</location><name>alt{i}</name></item></site>"
        )
    return docs


def _close(index) -> None:
    index.flush()
    index.close()
    index.docstore.close()
    if index.source_store is not None:
        index.source_store.close()


@pytest.fixture(scope="module")
def pristine(tmp_path_factory) -> tuple[Path, dict[str, list[int]]]:
    """A CLI-layout database directory plus its expected query answers."""
    dbdir = tmp_path_factory.mktemp("scrub") / "db"
    index = open_index(dbdir)
    for text in _corpus():
        index.add(parse_document(text))
    # tombstones: salvage must preserve ids across deleted documents
    index.remove(3)
    index.remove(7)
    _close(index)

    index = open_index(dbdir)
    expected = {q: index.query(q, verify=True) for q in QUERIES}
    _close(index)
    assert any(expected.values())  # the spot check must check something
    return dbdir, expected


def _flip_one_byte(path: Path, rng: random.Random) -> int:
    data = bytearray(path.read_bytes())
    offset = rng.randrange(len(data))
    mask = rng.randrange(1, 256)
    data[offset] ^= mask
    path.write_bytes(bytes(data))
    return offset


def _copy_db(pristine_dir: Path, dst: Path) -> Path:
    dbdir = dst / "db"
    shutil.copytree(pristine_dir, dbdir)
    return dbdir


def _check_queries_not_silently_wrong(dbdir: Path, expected) -> str:
    """Every query answer is correct, degraded-correct, or a loud error."""
    try:
        index = open_index(dbdir)
    except CorruptionError:
        return "open-failed"  # loud is allowed
    outcome = "clean"
    try:
        for xpath, want in expected.items():
            try:
                got = index.query(xpath, verify=True)
            except CorruptionError:
                outcome = "raised"
                continue  # loud is allowed
            assert got == want, (
                f"silently wrong answer for {xpath!r}: got {got}, want {want} "
                f"(health: {index.health.status})"
            )
            if not index.health.ok:
                outcome = "degraded"
    finally:
        _close(index)
    return outcome


@pytest.mark.parametrize(
    "seed",
    [
        pytest.param(s, marks=[] if s < FAST_SEEDS else [pytest.mark.slow])
        for s in range(TOTAL_SEEDS)
    ],
)
def test_bit_flip_sweep(pristine, tmp_path, seed):
    pristine_dir, expected = pristine
    dbdir = _copy_db(pristine_dir, tmp_path)
    rng = random.Random(seed)
    _flip_one_byte(dbdir / "vist.db", rng)

    # (a) scrub detects every flip: each byte of a v2 page file is
    # covered by some slot's CRC (the file is slot-aligned)
    report = scrub_db(dbdir, invariants=False)
    assert not report.checksums_ok, f"seed {seed}: scrub missed the flip"

    # (b) queries are never silently wrong
    _check_queries_not_silently_wrong(dbdir, expected)

    # (c) salvage rebuilds an invariant-clean, correct index from the
    # (untouched, checksummed) document store
    salvage_report = salvage_db(dbdir)
    assert salvage_report.replaced
    assert salvage_report.documents == 12
    assert salvage_report.tombstones == 2
    assert scrub_db(dbdir).ok
    index = open_index(dbdir)
    try:
        assert_invariants(index)
        for xpath, want in expected.items():
            assert index.query(xpath, verify=True) == want
        assert index.health.ok
    finally:
        _close(index)


def test_degraded_mode_reachable(pristine, tmp_path):
    """At least one page, when corrupted, triggers the degraded path.

    Corrupting pages one at a time must only ever produce clean answers,
    loud errors, or degraded-but-correct answers — and somewhere in the
    sweep the degraded path itself must actually fire (otherwise the
    fallback would be dead code that the bit-flip sweep never exercises).
    """
    pristine_dir, expected = pristine
    size = (pristine_dir / "vist.db").stat().st_size
    npages = size // (DEFAULT_PAGE_SIZE + 4)
    outcomes = set()
    for page_id in range(npages):
        dbdir = _copy_db(pristine_dir, tmp_path / f"p{page_id}")
        with open(dbdir / "vist.db", "r+b") as fh:
            offset = page_id * (DEFAULT_PAGE_SIZE + 4) + 100
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
        outcomes.add(_check_queries_not_silently_wrong(dbdir, expected))
    assert "degraded" in outcomes, f"degraded path never fired: {outcomes}"


def test_scrub_detects_docstore_corruption(pristine, tmp_path):
    pristine_dir, _ = pristine
    dbdir = _copy_db(pristine_dir, tmp_path)
    path = dbdir / "docs.dat"
    data = bytearray(path.read_bytes())
    # first byte of record 0's payload (8-byte magic + len/crc words);
    # tombstoned records' dead bytes carry no CRC, live payloads all do
    data[8 + 8] ^= 0x40
    path.write_bytes(bytes(data))
    report = scrub_db(dbdir, invariants=False)
    assert not report.checksums_ok
    # salvage must refuse: the docstore is the source of truth
    with pytest.raises(CorruptionError):
        salvage_db(dbdir)


def test_scrub_clean_db(pristine):
    pristine_dir, _ = pristine
    report = scrub_db(pristine_dir)
    assert report.ok
    assert report.invariants_checked
    assert not report.invariant_violations
    page_report = scrub_page_file(pristine_dir / "vist.db")
    assert page_report.ok and page_report.checked > 0
    rec_report = scrub_record_file(pristine_dir / "docs.dat")
    assert rec_report.ok and rec_report.checked == 12  # tombstones skipped


def test_scrub_reports_truncated_page_file(pristine, tmp_path):
    pristine_dir, _ = pristine
    dbdir = _copy_db(pristine_dir, tmp_path)
    path = dbdir / "vist.db"
    path.write_bytes(path.read_bytes()[:-7])  # knock the file off slot alignment
    report = scrub_page_file(path)
    assert not report.ok
    assert any("slot-aligned" in err for err in report.errors)


# ---------------------------------------------------------------------------
# pager error parity (Memory / File / Wal)


def _pager_factories(tmp_path):
    return {
        "memory": lambda: MemoryPager(),
        "file": lambda: FilePager(tmp_path / "parity_file.db"),
        "wal": lambda: WalPager(tmp_path / "parity_wal.db"),
    }


@pytest.mark.parametrize("kind", ["memory", "file", "wal"])
def test_pager_error_parity(tmp_path, kind):
    """The three pagers reject misuse with the same type and phrasing.

    Out-of-range ids, freed pages and closed pagers must look identical
    to callers regardless of the backing store — the degraded-mode and
    scrub layers rely on exception *types*, and operators rely on the
    messages naming the page.
    """
    pager = _pager_factories(tmp_path)[kind]()
    live = pager.allocate()
    pager.write(live, b"x" * pager.page_size)
    victim = pager.allocate()
    pager.free(victim)

    with pytest.raises(PageError, match="out of range"):
        pager.read(victim + 17)
    with pytest.raises(PageError, match="out of range"):
        pager.write(victim + 17, b"y" * pager.page_size)
    with pytest.raises(PageError, match=f"page {victim} is freed"):
        pager.read(victim)
    with pytest.raises(PageError, match=f"page {victim} is freed"):
        pager.write(victim, b"y" * pager.page_size)
    with pytest.raises(PageError, match=f"page {victim} is freed"):
        pager.free(victim)
    assert pager.read(live) == b"x" * pager.page_size

    pager.close()
    with pytest.raises(PageError, match="closed"):
        pager.read(live)


@pytest.mark.parametrize("kind", ["file", "wal"])
def test_freed_pages_rejected_after_reopen(tmp_path, kind):
    """File-backed pagers remember freed pages across close/reopen."""
    factory = _pager_factories(tmp_path)[kind]
    pager = factory()
    keep = pager.allocate()
    pager.write(keep, b"k" * pager.page_size)
    gone = pager.allocate()
    pager.free(gone)
    if kind == "wal":
        pager.commit()
    pager.sync()
    pager.close()

    pager = factory()
    try:
        assert pager.read(keep) == b"k" * pager.page_size
        with pytest.raises(PageError, match=f"page {gone} is freed"):
            pager.read(gone)
    finally:
        pager.close()


# ---------------------------------------------------------------------------
# storage accounting: interrupted free() leaks a page


def test_interrupted_free_leaks_page_scrub_finds_salvage_reclaims(pristine, tmp_path):
    """A crash between ``free()``'s slot write and header write orphans a
    page: every checksum still verifies, yet the slot is neither live nor
    on the freelist.  ``scrub`` must call it out and ``salvage`` must
    rebuild without it."""
    from repro.repair import scrub_page_reachability
    from repro.testing.faults import CrashingFreePager, SimulatedCrash

    pristine_dir, expected = pristine
    dbdir = _copy_db(pristine_dir, tmp_path)
    tree_path = dbdir / "vist.db"

    pager = CrashingFreePager(tree_path)
    victim = pager.allocate()  # fresh page: no tree references it
    pager.arm()
    with pytest.raises(SimulatedCrash):
        pager.free(victim)
    pager.abandon()  # fail-stop; close() would rewrite the header

    # checksums are clean — a CRC walk alone cannot see the leak
    assert scrub_page_file(tree_path).ok
    reach = scrub_page_reachability(tree_path)
    assert not reach.ok
    assert any(f"page {victim}: LEAKED" in err for err in reach.errors)
    report = scrub_db(dbdir)
    assert not report.ok
    assert any("LEAKED" in err for f in report.files for err in f.errors)

    # the leak is invisible to queries (it holds no data), only to space
    assert _check_queries_not_silently_wrong(dbdir, expected) == "clean"

    salvage_report = salvage_db(dbdir)
    assert salvage_report.replaced
    assert any("reclaimed 1 leaked page" in note for note in salvage_report.notes)
    after = scrub_db(dbdir)
    assert after.ok
    index = open_index(dbdir)
    try:
        for xpath, want in expected.items():
            assert index.query(xpath, verify=True) == want
    finally:
        _close(index)


def test_clean_database_has_no_leaks(pristine, tmp_path):
    """The reachability walk accounts for every slot of a healthy index
    (it contains freed pages from the tombstoned documents)."""
    from repro.repair import scrub_page_reachability

    pristine_dir, _ = pristine
    dbdir = _copy_db(pristine_dir, tmp_path)
    reach = scrub_page_reachability(dbdir / "vist.db")
    assert reach.ok
    assert any("no leaks" in note for note in reach.notes)
