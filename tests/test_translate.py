"""Tests for query translation — reproduces paper Table 2 exactly."""

import pytest

from repro.doc.schema import ChildSpec, Occurs, Schema
from repro.errors import TranslationError
from repro.query.ast import Dslash, QueryNode, Star
from repro.query.translate import QueryTranslator
from repro.query.xpath import parse_xpath
from repro.sequence.transform import SequenceEncoder


def table2_schema() -> Schema:
    """One-letter schema matching the paper's running example."""
    schema = Schema("P")
    schema.element("P", [ChildSpec("S"), ChildSpec("B")])
    schema.element("S", [ChildSpec("N"), ChildSpec("I", Occurs.MANY), ChildSpec("L")])
    schema.element("B", [ChildSpec("L"), ChildSpec("N")])
    schema.element("I", [ChildSpec("M"), ChildSpec("N"), ChildSpec("I", Occurs.MANY)])
    return schema


@pytest.fixture
def translator():
    return QueryTranslator(SequenceEncoder(schema=table2_schema()))


def shapes(seq):
    """(symbol, prefix-shape) pairs where wildcards render as '*' / '//'."""
    out = []
    for item in seq:
        prefix = tuple(
            "*" if isinstance(t, Star) else "//" if isinstance(t, Dslash) else t
            for t in item.prefix
        )
        out.append((item.symbol, prefix))
    return out


class TestTable2:
    def test_q1_single_path(self, translator):
        (seq,) = translator.translate(parse_xpath("/P/S/I/M"))
        assert shapes(seq) == [
            ("P", ()),
            ("S", ("P",)),
            ("I", ("P", "S")),
            ("M", ("P", "S", "I")),
        ]

    def test_q2_branching(self, translator):
        h = translator.encoder.hasher
        (seq,) = translator.translate(
            parse_xpath("/P[S[L='boston']]/B[L='newyork']")
        )
        assert shapes(seq) == [
            ("P", ()),
            ("S", ("P",)),
            ("L", ("P", "S")),
            (h("boston"), ("P", "S", "L")),
            ("B", ("P",)),
            ("L", ("P", "B")),
            (h("newyork"), ("P", "B", "L")),
        ]

    def test_q3_star(self, translator):
        h = translator.encoder.hasher
        (seq,) = translator.translate(parse_xpath("/P/*[L='boston']"))
        assert shapes(seq) == [
            ("P", ()),
            ("L", ("P", "*")),
            (h("boston"), ("P", "*", "L")),
        ]

    def test_q4_dslash(self, translator):
        h = translator.encoder.hasher
        (seq,) = translator.translate(parse_xpath("/P//I[M='part#1']"))
        assert shapes(seq) == [
            ("P", ()),
            ("I", ("P", "//")),
            ("M", ("P", "//", "I")),
            (h("part#1"), ("P", "//", "I", "M")),
        ]

    def test_wildcard_tokens_share_identity(self, translator):
        (seq,) = translator.translate(parse_xpath("/P/*[L='boston']"))
        star_of_l = seq[1].prefix[1]
        star_of_value = seq[2].prefix[1]
        assert isinstance(star_of_l, Star)
        assert star_of_l == star_of_value  # same wildcard node => same wid


class TestQ5Permutations:
    def test_same_label_branches_expand(self, translator):
        seqs = translator.translate(parse_xpath("/A[B/C]/B/D"))
        assert len(seqs) == 2
        rendered = {tuple(shapes(s)) for s in seqs}
        assert (
            ("A", ()),
            ("B", ("A",)),
            ("C", ("A", "B")),
            ("B", ("A",)),
            ("D", ("A", "B")),
        ) in rendered
        assert (
            ("A", ()),
            ("B", ("A",)),
            ("D", ("A", "B")),
            ("B", ("A",)),
            ("C", ("A", "B")),
        ) in rendered

    def test_identical_branches_dedupe(self, translator):
        seqs = translator.translate(parse_xpath("/A[B/C]/B/C"))
        assert len(seqs) == 1

    def test_three_way_permutation(self, translator):
        seqs = translator.translate(parse_xpath("/A[B/C][B/D]/B/E"))
        assert len(seqs) == 6

    def test_alternative_cap(self):
        t = QueryTranslator(SequenceEncoder(), max_alternatives=2)
        with pytest.raises(TranslationError):
            t.translate(parse_xpath("/A[B/C][B/D]/B/E"))

    def test_cap_validation(self):
        with pytest.raises(TranslationError):
            QueryTranslator(max_alternatives=0)


class TestWildcardBranchPlacement:
    def test_q8_style_wildcard_branch_floats(self, translator):
        """A wildcard branch may fall before or after concrete siblings."""
        seqs = translator.translate(parse_xpath("/c[*[p='x']]/d"))
        assert len(seqs) == 2
        orders = set()
        for seq in seqs:
            labels = [s for s, _ in shapes(seq)]
            orders.add(tuple(str(l) for l in labels[1:2]))
        # one alternative emits p-under-* first, the other emits d first
        first_symbols = {shapes(seq)[1][0] for seq in seqs}
        assert first_symbols == {"p", "d"}

    def test_wildcard_value_predicate_emits_placeholder_item(self, translator):
        h = translator.encoder.hasher
        q = QueryNode("a")
        q.add(QueryNode("*", value="x"))
        (seq,) = translator.translate(q)
        assert shapes(seq) == [("a", ()), (h("x"), ("a", "*"))]


class TestSiblingOrderConsistency:
    def test_branches_follow_schema_order(self, translator):
        """Branch order in the query matches the data transform's order."""
        (seq,) = translator.translate(parse_xpath("/P[B]/S"))
        labels = [s for s, _ in shapes(seq)]
        assert labels == ["P", "S", "B"]  # schema: S before B

    def test_lexicographic_without_schema(self):
        t = QueryTranslator(SequenceEncoder())
        (seq,) = t.translate(parse_xpath("/r[z]/a"))
        labels = [item.symbol for item in seq]
        assert labels == ["r", "a", "z"]

    def test_min_prefix_len(self, translator):
        (seq,) = translator.translate(parse_xpath("/P//I"))
        item = seq[1]
        assert item.min_prefix_len == 1  # 'P' counts, '//' may be empty
        assert not item.is_exact_len
        (seq2,) = translator.translate(parse_xpath("/P/*/L"))
        assert seq2[1].min_prefix_len == 2
        assert seq2[1].is_exact_len
