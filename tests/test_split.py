"""Tests for substructure record splitting (the paper's XMark treatment)."""

import pytest

from repro.doc.model import XmlDocument, XmlNode
from repro.doc.split import split_document, split_records
from repro.errors import DocumentError
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder


def auction_site() -> XmlNode:
    """A miniature single-record XMark-like document."""
    site = XmlNode("site")
    regions = site.element("regions")
    africa = regions.element("africa")
    i1 = africa.element("item", id="i1")
    i1.element("location", text="US")
    i2 = africa.element("item", id="i2")
    i2.element("location", text="Kenya")
    people = site.element("people")
    p1 = people.element("person", id="p1")
    p1.element("name", text="alice")
    return site


class TestSplitRecords:
    def test_extracts_each_instance(self):
        records = split_records(auction_site(), ["item", "person"])
        assert len(records) == 3

    def test_spine_preserved(self):
        records = split_records(auction_site(), ["item"])
        first = records[0]
        assert first.label == "site"
        assert first.children[0].label == "regions"
        assert first.children[0].children[0].label == "africa"
        item = first.children[0].children[0].children[0]
        assert item.label == "item"
        assert item.attributes == {"id": "i1"}
        assert item.children[0].text == "US"

    def test_spine_drops_siblings(self):
        records = split_records(auction_site(), ["person"])
        (person_record,) = records
        # the people branch only, and inside it only the one person
        assert [c.label for c in person_record.children] == ["people"]
        assert len(person_record.children[0].children) == 1

    def test_no_spine_mode(self):
        records = split_records(auction_site(), ["item"], keep_spine=False)
        assert all(r.label == "item" for r in records)
        assert records[0].children[0].label == "location"

    def test_nested_instances_become_records(self):
        root = XmlNode("site")
        outer = root.element("item", id="outer")
        outer.element("item", id="inner")
        records = split_records(root, ["item"], keep_spine=False)
        assert {r.attributes["id"] for r in records} == {"outer", "inner"}
        # the outer record still contains the inner item as a subtree
        outer_rec = next(r for r in records if r.attributes["id"] == "outer")
        assert outer_rec.children[0].attributes["id"] == "inner"

    def test_records_are_copies(self):
        original = auction_site()
        records = split_records(original, ["item"])
        records[0].children[0].label = "MUTATED"
        assert original.children[0].label == "regions"

    def test_root_can_be_a_record(self):
        root = XmlNode("person")
        root.element("name", text="bob")
        (record,) = split_records(root, ["person"])
        assert record.label == "person"
        assert record.children[0].text == "bob"

    def test_requires_labels(self):
        with pytest.raises(DocumentError):
            split_records(auction_site(), [])

    def test_document_wrapper_names(self):
        doc = XmlDocument(auction_site(), name="xmark.xml")
        records = list(split_document(doc, ["item"]))
        assert [r.name for r in records] == ["xmark.xml#0", "xmark.xml#1"]


class TestSplitThenIndex:
    def test_site_queries_work_on_split_records(self):
        """End to end: split one big document, index the records, query."""
        index = VistIndex(SequenceEncoder())
        records = split_records(auction_site(), ["item", "person"])
        ids = [index.add(r) for r in records]
        us_items = index.query("/site//item[location='US']")
        assert len(us_items) == 1
        people = index.query("/site/people/person")
        assert len(people) == 1
        # unsplit indexing would return the whole document for any match;
        # split indexing distinguishes the instances
        assert us_items != people
