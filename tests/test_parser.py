"""Tests for the hand-written XML parser (including an ElementTree cross-check)."""

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.doc.model import XmlNode
from repro.doc.parser import from_element_tree, parse_document, parse_fragment
from repro.errors import XmlParseError


class TestBasicParsing:
    def test_empty_element(self):
        node = parse_fragment("<a/>")
        assert node.label == "a"
        assert not node.children
        assert node.text is None

    def test_nested_elements(self):
        node = parse_fragment("<a><b><c/></b><d/></a>")
        assert [c.label for c in node.children] == ["b", "d"]
        assert node.children[0].children[0].label == "c"

    def test_attributes(self):
        node = parse_fragment('<item id="7" loc=\'US\'/>')
        assert node.attributes == {"id": "7", "loc": "US"}

    def test_text_content(self):
        node = parse_fragment("<name>  dell  </name>")
        assert node.text == "dell"

    def test_mixed_content_concatenates(self):
        node = parse_fragment("<p>one<b/>two</p>")
        assert node.text == "one two"
        assert node.children[0].label == "b"

    def test_entities(self):
        node = parse_fragment("<a x='&quot;q&quot;'>&lt;tag&gt; &amp; &#65;&#x42;</a>")
        assert node.text == "<tag> & AB"
        assert node.attributes["x"] == '"q"'

    def test_cdata(self):
        node = parse_fragment("<a><![CDATA[<raw> & stuff]]></a>")
        assert node.text == "<raw> & stuff"

    def test_comments_and_pis_skipped(self):
        node = parse_fragment("<a><!-- note --><?pi data?><b/></a>")
        assert [c.label for c in node.children] == ["b"]

    def test_prologue(self):
        doc = parse_document(
            '<?xml version="1.0"?>\n<!DOCTYPE purchases [ <!ELEMENT a (b)> ]>\n'
            "<!-- header -->\n<purchases/>"
        )
        assert doc.root.label == "purchases"

    def test_whitespace_in_tags(self):
        node = parse_fragment('<a  x = "1" ></a >')
        assert node.attributes == {"x": "1"}


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "plain text",
            "<a>",
            "<a></b>",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "<a>&unknown;</a>",
            "<a/><b/>",
            "<a><![CDATA[oops</a>",
            "<!DOCTYPE broken",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(XmlParseError):
            parse_fragment(text)

    def test_error_reports_location(self):
        with pytest.raises(XmlParseError, match=r"line 2"):
            parse_fragment("<a>\n</b>")


class TestRoundTripAndCrossCheck:
    def build_tree(self) -> XmlNode:
        root = XmlNode("site")
        item = root.element("item", id="i1")
        item.element("location", text="US")
        item.element("name", text="Fast & <Cheap>")
        person = root.element("person", id="p1")
        person.element("city", text="Pocatello")
        return root

    def test_roundtrip_through_to_xml(self):
        original = self.build_tree()
        assert parse_fragment(original.to_xml()) == original

    def test_agrees_with_element_tree(self):
        text = self.build_tree().to_xml()
        ours = parse_fragment(text)
        theirs = from_element_tree(ET.fromstring(text))
        assert ours == theirs

    @given(
        labels=st.lists(
            st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=8
        ),
        values=st.lists(st.text(alphabet="xyz <&>'\"0", max_size=6), min_size=1, max_size=8),
    )
    def test_property_roundtrip(self, labels, values):
        root = XmlNode("root")
        cursor = root
        for label, value in zip(labels, values):
            stripped = " ".join(value.split())
            cursor = cursor.element(label, text=stripped or None, attr=value)
        reparsed = parse_fragment(root.to_xml())
        ours = root
        # attribute values survive exactly; text survives modulo whitespace policy
        while ours.children or reparsed.children:
            assert reparsed.label == ours.label
            assert reparsed.attributes == ours.attributes
            assert (reparsed.text or "") == (ours.text or "")
            if not ours.children:
                break
            ours, reparsed = ours.children[0], reparsed.children[0]
