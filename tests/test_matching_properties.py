"""Property tests for matching semantics with random wildcard queries.

Raw ViST matching must never produce a false *negative* relative to the
XPath-embedding oracle for single-path queries (which avoid the known
branch ambiguities), and must always be a superset of the oracle for
arbitrary wildcard paths.  These invariants are checked over random
corpora and random query paths containing ``*`` and ``//``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.doc.model import XmlNode
from repro.index.verification import verify_document
from repro.index.vist import VistIndex
from repro.query.ast import DSLASH_LABEL, STAR_LABEL, QueryNode
from repro.sequence.transform import SequenceEncoder

LABELS = ["a", "b", "c", "d"]


@st.composite
def random_tree(draw):
    shape = draw(
        st.lists(
            st.tuples(st.sampled_from(LABELS), st.integers(0, 99), st.booleans()),
            min_size=1,
            max_size=10,
        )
    )
    root = XmlNode("r")
    nodes = [root]
    for label, pick, with_value in shape:
        parent = nodes[pick % len(nodes)]
        child = parent.element(label)
        if with_value:
            child.text = draw(st.sampled_from(["x", "y"]))
        nodes.append(child)
    return root


@st.composite
def random_path_query(draw):
    """A single-path query /r/step/step... with optional wildcards/values."""
    steps = draw(
        st.lists(
            st.sampled_from(LABELS + [STAR_LABEL, DSLASH_LABEL]),
            min_size=1,
            max_size=4,
        )
    )
    # collapse adjacent //'s (the parser never produces them)
    cleaned = []
    for label in steps:
        if label == DSLASH_LABEL and cleaned and cleaned[-1] == DSLASH_LABEL:
            continue
        cleaned.append(label)
    if cleaned[-1] == DSLASH_LABEL:
        cleaned.append(draw(st.sampled_from(LABELS)))
    root = QueryNode("r")
    cursor = root
    for label in cleaned:
        cursor = cursor.add(QueryNode(label))
    if draw(st.booleans()) and not cursor.is_wildcard:
        cursor.value = draw(st.sampled_from(["x", "y"]))
    return root


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(docs=st.lists(random_tree(), min_size=1, max_size=10), query=random_path_query())
def test_single_path_queries_are_exact(docs, query):
    """For path queries (no branches) raw matching equals the oracle."""
    encoder = SequenceEncoder()
    index = VistIndex(SequenceEncoder())
    expected = []
    for i, doc in enumerate(docs):
        index.add(doc)
        if verify_document(encoder.encode_node(doc), query, encoder.hasher):
            expected.append(i)
    assert index.query(query) == expected


@st.composite
def random_branch_query(draw):
    """A query tree with up to two branches (may trigger ambiguities)."""
    root = QueryNode("r")
    for _ in range(draw(st.integers(1, 2))):
        cursor = root
        for label in draw(
            st.lists(st.sampled_from(LABELS + [STAR_LABEL]), min_size=1, max_size=3)
        ):
            cursor = cursor.add(QueryNode(label))
        if not cursor.is_wildcard and draw(st.booleans()):
            cursor.value = draw(st.sampled_from(["x", "y"]))
    return root


def _branches_may_alias(query: QueryNode) -> bool:
    """Mirror of XmlIndexBase._needs_relaxed_candidates: sibling branches
    that could bind the same data node (same labels, or wildcards)."""
    for node in query.preorder():
        if len(node.children) > 1 and any(c.is_wildcard for c in node.children):
            return True
        labels = [c.label for c in node.children if not c.is_wildcard]
        if len(labels) != len(set(labels)):
            return True
    return False


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(docs=st.lists(random_tree(), min_size=1, max_size=10), query=random_branch_query())
def test_branch_queries_verified_mode_is_exact(docs, query):
    """Verified mode equals the XPath oracle for arbitrary branch
    queries; raw matching over-approximates it except in the documented
    same-label-branch case (where it may also under-approximate)."""
    encoder = SequenceEncoder()
    index = VistIndex(SequenceEncoder())
    expected = set()
    for i, doc in enumerate(docs):
        index.add(doc)
        if verify_document(encoder.encode_node(doc), query, encoder.hasher):
            expected.add(i)
    if not _branches_may_alias(query):
        raw = set(index.query(query))
        assert expected <= raw  # no false negatives outside the aliasing caveat
    assert sorted(expected) == index.query(query, verify=True)
