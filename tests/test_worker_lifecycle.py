"""Worker process lifecycle: the paths PR 6 left untested.

Covers the orphan/shutdown plumbing of ``python -m repro.shard.worker``:

* **stdin-EOF orphan watchdog** — the parent holds the worker's stdin
  write end; closing it (what parent death does) must make the worker
  fold instead of holding the shard's WAL hostage;
* **SIGTERM** — the handler sets the stop flag: the accept loop drains,
  the listener closes, and the process exits 0;
* **--port 0 announcement races** — nothing listens before the
  ``PORT <n>`` line is printed, and connecting right after reading it
  always works (the announcement is made *after* ``listen()``).

These spawn real interpreters against a real shard directory.
"""

from __future__ import annotations

import os
import select
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.doc.model import XmlNode
from repro.shard.protocol import recv_frame, send_frame
from repro.shard.routing import shard_dir

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture
def shard_path(tmp_path):
    """One populated shard directory (shard 0 of a 1-shard database)."""
    from repro.shard import ShardRouter

    dbdir = tmp_path / "db"
    with ShardRouter(dbdir, 1) as router:
        root = XmlNode("r")
        root.element("a", text="v0")
        router.add(root)
    return shard_dir(dbdir, 0)


def _spawn_worker(shard_path: Path, extra_args=()) -> subprocess.Popen:
    env = os.environ.copy()
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1]) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.shard.worker", str(shard_path), *extra_args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )


def _read_port(proc: subprocess.Popen, timeout_s: float = 30.0) -> int:
    deadline = time.monotonic() + timeout_s
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        assert proc.poll() is None, f"worker exited early: {proc.returncode}"
        ready, _, _ = select.select([proc.stdout], [], [], 0.25)
        if not ready:
            continue
        line = proc.stdout.readline()
        if line.startswith("PORT "):
            return int(line.split()[1])
    raise AssertionError("worker never announced a port")


def _wait_exit(proc: subprocess.Popen, timeout_s: float = 15.0) -> int:
    try:
        return proc.wait(timeout=timeout_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        raise AssertionError(f"worker did not exit within {timeout_s:g}s")


def _cleanup(proc: subprocess.Popen) -> None:
    for stream in (proc.stdin, proc.stdout):
        if stream is not None:
            try:
                stream.close()
            except OSError:
                pass


def _ping(port: int) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        send_frame(sock, {"id": 1, "op": "ping"})
        return recv_frame(sock)


class TestStdinWatchdog:
    def test_stdin_eof_terminates_the_worker(self, shard_path):
        """Parent death = stdin EOF = the orphan folds, promptly."""
        proc = _spawn_worker(shard_path)
        try:
            port = _read_port(proc)
            assert _ping(port)["ok"]  # alive and serving
            proc.stdin.close()  # what a dying parent does to the pipe
            code = _wait_exit(proc)
            assert code == 0
            # and the listener is really gone
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", port), timeout=2)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            _cleanup(proc)


class TestSigterm:
    def test_sigterm_closes_listener_and_exits_zero(self, shard_path):
        proc = _spawn_worker(shard_path)
        try:
            port = _read_port(proc)
            assert _ping(port)["ok"]
            proc.send_signal(signal.SIGTERM)
            code = _wait_exit(proc)
            assert code == 0
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", port), timeout=2)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            _cleanup(proc)

    def test_sigterm_mid_connection_still_exits_zero(self, shard_path):
        proc = _spawn_worker(shard_path)
        try:
            port = _read_port(proc)
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                send_frame(sock, {"id": 1, "op": "ping"})
                assert recv_frame(sock)["ok"]
                proc.send_signal(signal.SIGTERM)
                code = _wait_exit(proc)
            assert code == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            _cleanup(proc)


class TestPortAnnouncement:
    def test_nothing_listens_before_the_announcement(self, shard_path):
        """With a pre-picked fixed port: connection refused before spawn,
        and the announced port equals the requested one after."""
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        # the port is free again: nothing accepts on it
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1)
        proc = _spawn_worker(shard_path, extra_args=["--port", str(port)])
        try:
            announced = _read_port(proc)
            assert announced == port
            # the announcement is printed after listen(): connecting right
            # after reading the line must always succeed
            assert _ping(port)["ok"]
        finally:
            proc.kill()
            proc.wait()
            _cleanup(proc)

    def test_ephemeral_port_is_connectable_immediately(self, shard_path):
        """--port 0: the announced ephemeral port accepts immediately, on
        repeated spawns (the race is between listen() and the print)."""
        for _ in range(3):
            proc = _spawn_worker(shard_path)
            try:
                port = _read_port(proc)
                assert _ping(port)["ok"]
            finally:
                proc.kill()
                proc.wait()
                _cleanup(proc)

    def test_shutdown_frame_exits_zero(self, shard_path):
        proc = _spawn_worker(shard_path)
        try:
            port = _read_port(proc)
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                send_frame(sock, {"id": 1, "op": "shutdown"})
                assert recv_frame(sock)["ok"]
            code = _wait_exit(proc)
            assert code == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            _cleanup(proc)
