"""Crash/fault coverage of the bulk-ingest and atomic-insert paths.

Three layers of failure are proven here:

* **source-store failure** mid-``add``: the sequence insert is rolled
  back before the exception escapes (no orphan sequence, contiguous doc
  ids, clean invariants) — the atomicity bugfix regression;
* **process crash** at any durability primitive of a batch commit
  (``sweep_commit_faults``): recovery always lands on a batch boundary,
  trailing docstore records past the committed tree state are truncated
  at reopen;
* **partial sharded chunk**: the router burns positional tombstones for
  planned ids that never landed, so ``ShardMap.recover`` can always
  explain the directory on the next open.
"""

import pytest

from repro.datasets.dblp import DblpConfig, DblpGenerator
from repro.errors import IndexStateError, StorageError
from repro.index.naive import NaiveIndex
from repro.index.vist import VistIndex
from repro.sequence.transform import SequenceEncoder
from repro.shard.router import ShardRouter
from repro.storage.cache import BufferPool
from repro.storage.docstore import FileDocStore, MemoryDocStore
from repro.storage.wal import WalPager
from repro.testing.faults import sweep_commit_faults
from repro.testing.generator import DocQueryGenerator
from repro.testing.invariants import assert_invariants, check_index

QUERIES = ["//book", "//article", "//author", "//phdthesis/year"]


def _records(count, seed=4):
    return list(DblpGenerator(DblpConfig(seed=seed)).records(count))


class ExplodingStore(MemoryDocStore):
    """MemoryDocStore that raises on the Nth successful add."""

    def __init__(self, fail_at):
        super().__init__()
        self.fail_at = fail_at
        self.adds = 0

    def add(self, payload):
        if self.adds == self.fail_at:
            raise StorageError("simulated source-store failure")
        self.adds += 1
        return super().add(payload)


def _answers(index):
    return {q: sorted(index.query(q)) for q in QUERIES}


class TestSourceFailureRollback:
    @pytest.mark.parametrize("track_refs", [True, False])
    def test_vist_add_rolls_back_sequence(self, track_refs):
        records = _records(8)
        source = ExplodingStore(fail_at=4)
        index = VistIndex(
            SequenceEncoder(schema=None),
            docstore=MemoryDocStore(),
            source_store=source,
            track_refs=track_refs,
        )
        for record in records[:4]:
            index.add(record)
        with pytest.raises(StorageError):
            index.add(records[4])
        # the failed insert left nothing behind: count, stores, invariants
        assert len(index) == 4
        assert len(index.docstore) == len(index.source_store) == 4
        for report in check_index(index):
            assert report.ok, report.summary()
        # ids keep being assigned contiguously after the failure
        source.fail_at = None
        assert index.add(records[4]) == 4
        assert index.add(records[5]) == 5
        oracle = VistIndex(
            SequenceEncoder(schema=None),
            docstore=MemoryDocStore(),
            source_store=MemoryDocStore(),
            track_refs=track_refs,
        )
        oracle.add_all(records[:6])
        assert _answers(index) == _answers(oracle)

    def test_vist_rollback_preserves_shared_nodes(self):
        # structurally-overlapping documents: the rollback must only
        # unwind this insert's refcounts, never a neighbour's nodes
        documents = DocQueryGenerator(13).corpus(8, 10)
        source = ExplodingStore(fail_at=5)
        index = VistIndex(
            SequenceEncoder(schema=None),
            docstore=MemoryDocStore(),
            source_store=source,
        )
        for doc in documents[:5]:
            index.add(doc)
        with pytest.raises(StorageError):
            index.add(documents[5])
        assert len(index) == 5
        assert_invariants(index)
        source.fail_at = None
        for doc in documents[5:]:
            index.add(doc)
        assert_invariants(index)

    def test_naive_add_rolls_back_trie(self):
        records = _records(5)
        source = ExplodingStore(fail_at=2)
        index = NaiveIndex(
            SequenceEncoder(schema=None),
            docstore=MemoryDocStore(),
            source_store=source,
        )
        index.add(records[0])
        index.add(records[1])
        with pytest.raises(StorageError):
            index.add(records[2])
        assert len(index) == 2
        source.fail_at = None
        assert index.add(records[2]) == 2
        oracle = NaiveIndex(SequenceEncoder(schema=None))
        oracle.add_all(records[:3])
        assert sorted(index.query("//book")) == sorted(oracle.query("//book"))

    def test_add_batch_mid_chunk_failure(self):
        records = _records(10)
        source = ExplodingStore(fail_at=6)
        index = VistIndex(
            SequenceEncoder(schema=None),
            docstore=MemoryDocStore(),
            source_store=source,
        )
        with pytest.raises(StorageError):
            index.add_batch(records, batch_size=4)
        # chunk 1 (docs 0-3) landed, chunk 2 failed at its third doc:
        # docs 4-5 stay, doc 6 is rolled back
        assert len(index) == 6
        for report in check_index(index):
            assert report.ok, report.summary()
        source.fail_at = None
        assert index.add_batch(records[6:], batch_size=4) == [6, 7, 8, 9]
        oracle = VistIndex(
            SequenceEncoder(schema=None),
            docstore=MemoryDocStore(),
            source_store=MemoryDocStore(),
        )
        oracle.add_all(records)
        assert _answers(index) == _answers(oracle)


class TestTrailingDocTruncation:
    def _open(self, tmp_path):
        return VistIndex(
            SequenceEncoder(schema=None),
            docstore=FileDocStore(tmp_path / "docs.dat"),
            pager=BufferPool(WalPager(str(tmp_path / "vist.db")), capacity=64),
            source_store=FileDocStore(tmp_path / "sources.dat"),
        )

    def _close(self, index):
        index.close()
        index.docstore.close()
        index.source_store.close()

    def test_uncommitted_trailing_docs_are_dropped(self, tmp_path):
        records = _records(12)
        index = self._open(tmp_path)
        index.add_batch(records[:8], batch_size=4)  # durable: 2 commits
        committed = _answers(index)
        # crash simulation: records appended to the stores *after* the
        # last commit — complete on disk, but the tree never heard of
        # the 3rd one (docstore.add bypasses the index on purpose)
        for record in records[8:10]:
            index.add(record)
        index.docstore.add(b"torn-orphan-payload")
        index.docstore.flush()
        index.source_store.flush()
        # skip index.flush(): the tree state on disk is the 8-doc commit
        index.docstore.close()
        index.source_store.close()
        index._pager.base.close()

        reopened = self._open(tmp_path)
        try:
            assert reopened.recovered_trailing_docs == 3
            assert len(reopened) == 8
            assert _answers(reopened) == committed
            assert_invariants(reopened)
            # and ingest continues cleanly on the recovered boundary
            assert reopened.add_batch(records[8:], batch_size=4) == [8, 9, 10, 11]
            assert_invariants(reopened)
        finally:
            self._close(reopened)


class TestBatchCommitSweep:
    """Kill a batch commit at every WAL primitive; recovery must land on
    a batch boundary with clean invariants and truncated stores."""

    batch1 = _records(5, seed=21)
    batch2 = _records(4, seed=22)

    def _index(self, pager, tmp_path):
        return VistIndex(
            SequenceEncoder(schema=None),
            docstore=FileDocStore(tmp_path / "docs.dat"),
            pager=pager,
            source_store=FileDocStore(tmp_path / "sources.dat"),
            posting_cache_size=0,
        )

    def _stage(self, index):
        """Everything _commit_batch does except the pager commit itself
        (the sweep harness owns the commit under test)."""
        index.docstore.flush(fsync=True)
        index.source_store.flush(fsync=True)
        index._record_store_bounds()
        index.tree.flush()
        index.docid_tree.flush()
        index.docstore.close()
        index.source_store.close()

    def test_batch_boundary_sweep(self, tmp_path):
        store_files = [tmp_path / "docs.dat", tmp_path / "sources.dat"]
        store_snapshot = {}

        def setup(pager):
            index = self._index(pager, tmp_path)
            index.add_batch(self.batch1, batch_size=5, durability="none")
            self._stage(index)
            for path in store_files:
                store_snapshot[path] = path.read_bytes()

        def mutate(pager):
            # the sweep restores the page file between faults; the
            # docstores are ours to restore
            for path in store_files:
                path.write_bytes(store_snapshot[path])
            index = self._index(pager, tmp_path)
            index.add_batch(self.batch2, batch_size=4, durability="none")
            self._stage(index)

        def check(recovered_pager, phase):
            index = self._index(recovered_pager, tmp_path)
            try:
                expected = len(self.batch1) + (
                    len(self.batch2) if phase == "post" else 0
                )
                if phase == "pre":
                    # the batch-2 appends are complete on disk but
                    # uncommitted: reopen truncates them
                    assert index.recovered_trailing_docs == len(self.batch2)
                assert len(index) == expected
                for report in check_index(index):
                    assert report.ok, f"{phase}: {report.summary()}"
                assert len(index.query("//author")) == expected
            finally:
                index.docstore.close()
                index.source_store.close()

        report = sweep_commit_faults(
            tmp_path / "vist.db",
            setup,
            mutate,
            page_size=2048,
            check=check,
        )
        assert report.total_ops == report.expected_ops
        assert report.entries >= 2


class TestShardedChunkRepair:
    def test_partial_chunk_burns_tombstones_and_recovers(self, tmp_path):
        records = _records(20, seed=31)
        router = ShardRouter(tmp_path / "db", 2, wal=True)
        router.add_batch(records[:8], batch_size=8)
        assert router.map.next_doc_id == 8

        # make one shard refuse its group: the chunk dies between shards
        victim = router.shards[1]
        original = victim.add_batch

        def boom(*args, **kwargs):
            raise StorageError("simulated shard failure")

        victim.add_batch = boom
        with pytest.raises(IndexStateError) as err:
            router.add_batch(records[8:16], batch_size=8)
        assert "tombstoned" in str(err.value)
        victim.add_batch = original

        # the map advanced over the whole planned chunk regardless
        assert router.map.next_doc_id == 16
        survivors = set(router.doc_ids())
        assert set(range(8)) <= survivors
        # ingest continues under fresh ids
        new_ids = router.add_batch(records[16:], batch_size=8)
        assert new_ids == list(range(16, 20))
        answers = router.query("//author")
        router.close()

        # the directory must reopen without IndexStateError — the exact
        # failure ShardMap.recover raises on unexplainable layouts
        reopened = ShardRouter(tmp_path / "db", wal=True)
        try:
            assert reopened.map.next_doc_id == 20
            assert set(reopened.doc_ids()) == survivors | set(new_ids)
            assert reopened.query("//author") == answers
            for shard in reopened.shards:
                assert_invariants(shard)
        finally:
            reopened.close()

    def test_clean_batches_need_no_repair(self, tmp_path):
        records = _records(12, seed=33)
        router = ShardRouter(tmp_path / "db", 3, wal=True)
        ids = router.add_batch(records, batch_size=5)
        assert ids == list(range(12))
        answers = router.query("//book")
        router.close()
        reopened = ShardRouter(tmp_path / "db")
        try:
            assert reopened.query("//book") == answers
        finally:
            reopened.close()
