"""Tests for the prefix-pattern matcher used by Algorithm 2."""

from repro.index.matching import match_prefix_pattern, resolve_pattern
from repro.query.ast import Dslash, Star


class TestMatchPrefixPattern:
    def test_concrete_only(self):
        assert match_prefix_pattern(("P", "S"), ("P", "S")) == [()]
        assert match_prefix_pattern(("P", "S"), ("P", "B")) == []
        assert match_prefix_pattern(("P",), ("P", "S")) == []  # length must match

    def test_unbound_star_binds_one_label(self):
        results = match_prefix_pattern(("P", Star(0)), ("P", "S"))
        assert results == [((0, ("S",)),)]

    def test_bound_star_must_agree(self):
        binding = ((0, ("S",)),)
        assert match_prefix_pattern(("P", Star(0), "L"), ("P", "S", "L"), binding)
        assert not match_prefix_pattern(("P", Star(0), "L"), ("P", "B", "L"), binding)

    def test_star_cannot_match_empty(self):
        assert match_prefix_pattern((Star(0),), ()) == []

    def test_unbound_dslash_matches_any_segment(self):
        results = match_prefix_pattern(("P", Dslash(0), "I"), ("P", "S", "I", "I"))
        assert results == [((0, ("S", "I")),)]

    def test_dslash_matches_empty_segment(self):
        results = match_prefix_pattern(("P", Dslash(0)), ("P",))
        assert results == [((0, ()),)]

    def test_two_dslash_yield_multiple_splits(self):
        results = match_prefix_pattern((Dslash(0), "a", Dslash(1)), ("a", "a", "a"))
        # 'a' can be data position 0, 1 or 2
        assert len(results) == 3

    def test_bound_dslash_must_agree(self):
        binding = ((0, ("S",)),)
        assert match_prefix_pattern(("P", Dslash(0), "L"), ("P", "S", "L"), binding)
        assert not match_prefix_pattern(("P", Dslash(0), "L"), ("P", "B", "L"), binding)
        assert not match_prefix_pattern(("P", Dslash(0), "L"), ("P", "L"), binding)

    def test_dedupes_identical_binding_sets(self):
        results = match_prefix_pattern((Dslash(0), Dslash(0)), ())
        assert results == [((0, ()),)]


class TestResolvePattern:
    def test_all_concrete(self):
        leading, tail = resolve_pattern(("P", "S"), ())
        assert leading == ("P", "S")
        assert tail == ()

    def test_stops_at_unbound_wildcard(self):
        leading, tail = resolve_pattern(("P", Star(0), "L"), ())
        assert leading == ("P",)
        assert tail == (Star(0), "L")

    def test_bound_wildcard_extends_leading(self):
        leading, tail = resolve_pattern(("P", Star(0), "L"), ((0, ("S",)),))
        assert leading == ("P", "S", "L")
        assert tail == ()

    def test_bound_dslash_expands_labels(self):
        leading, tail = resolve_pattern(("P", Dslash(0), "I"), ((0, ("S", "I")),))
        assert leading == ("P", "S", "I", "I")
        assert tail == ()

    def test_bound_wildcard_after_unbound_goes_to_tail(self):
        leading, tail = resolve_pattern(
            ("P", Star(0), Star(1)), ((1, ("X",)),)
        )
        assert leading == ("P",)
        assert tail == (Star(0), "X")
